(** Sum-of-products covers: a list of {!Cube.t} over [num_vars]
    variables.  Used as the input format of the synthesis flow and as
    the function representation of [.names] nodes in BLIF. *)

type t

val create : int -> Cube.t list -> t
(** Contradictory cubes are dropped. *)

val num_vars : t -> int
val cubes : t -> Cube.t list
val num_cubes : t -> int
val num_literals : t -> int

val const_false : int -> t
val const_true : int -> t

val eval : t -> int -> bool
(** Value on a minterm. *)

val to_tt : t -> Tt.t
(** Only for [num_vars <= Tt.max_vars]. *)

val of_tt : Tt.t -> t
(** Minterm-canonical cover (one cube per ON-minterm), then merged. *)

val complement_naive : t -> t
(** De-Morgan expansion with single-cube containment cleanup; meant for
    covers with few cubes (library cells, BLIF nodes). *)

val minimize : t -> t
(** Cheap cover cleanup: drop contained cubes, apply distance-1 merges
    to a fixpoint.  Not a full ESPRESSO; deterministic. *)

val tautology : t -> bool
(** Is the cover identically true?  Unate-recursion (cofactor on the
    most binate variable with unate shortcuts). *)

val covers_cube : t -> Cube.t -> bool
(** [covers_cube t c]: is every minterm of [c] in the cover?  (The
    cover cofactored by [c] is a tautology.) *)

val espresso : t -> t
(** EXPAND (literal removal validated by tautology-based containment)
    followed by IRREDUNDANT (drop cubes covered by the rest), iterated
    to a fixpoint.  Single-output, no external don't-care set;
    deterministic.  Function-preserving for any arity. *)

val pp : Format.formatter -> t -> unit
