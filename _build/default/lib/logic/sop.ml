type t = { n : int; cs : Cube.t list }

let create n cs =
  if n < 0 || n > 62 then invalid_arg "Sop.create";
  { n; cs = List.filter (fun c -> not (Cube.is_contradictory c)) cs }

let num_vars t = t.n
let cubes t = t.cs
let num_cubes t = List.length t.cs
let num_literals t = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t.cs

let const_false n = create n []
let const_true n = create n [ Cube.universe ]

let eval t m = List.exists (fun c -> Cube.eval c m) t.cs

let to_tt t =
  if t.n > Tt.max_vars then invalid_arg "Sop.to_tt";
  List.fold_left (fun acc c -> Tt.or_ acc (Cube.to_tt t.n c)) (Tt.const_false t.n) t.cs

let of_tt tt =
  let n = Tt.num_vars tt in
  let cube_of_minterm m =
    let lits = List.init n (fun i -> (i, m land (1 lsl i) <> 0)) in
    Cube.of_literals lits
  in
  let cover = List.map cube_of_minterm (Tt.minterms tt) in
  (* Greedy distance-1 merging to a fixpoint. *)
  let rec merge_pass cs =
    let merged = ref false in
    let rec try_merge acc = function
      | [] -> List.rev acc
      | c :: rest ->
        let rec find_partner before = function
          | [] -> try_merge (c :: acc) (List.rev before)
          | d :: after -> (
            match Cube.merge c d with
            | Some m ->
              merged := true;
              try_merge (m :: acc) (List.rev_append before after)
            | None -> find_partner (d :: before) after)
        in
        find_partner [] rest
    in
    let cs' = try_merge [] cs in
    if !merged then merge_pass cs' else cs'
  in
  create n (merge_pass cover)

let drop_contained cs =
  let rec loop acc = function
    | [] -> List.rev acc
    | c :: rest ->
      if List.exists (fun d -> Cube.contains d c) rest
         || List.exists (fun d -> Cube.contains d c) acc
      then loop acc rest
      else loop (c :: acc) rest
  in
  loop [] cs

let minimize t =
  let rec merge_fix cs =
    let merged = ref false in
    let rec go acc = function
      | [] -> List.rev acc
      | c :: rest ->
        let rec find before = function
          | [] -> go (c :: acc) (List.rev before)
          | d :: after -> (
            match Cube.merge c d with
            | Some m ->
              merged := true;
              go (m :: acc) (List.rev_append before after)
            | None -> find (d :: before) after)
        in
        find [] rest
    in
    let cs' = drop_contained (go [] cs) in
    if !merged then merge_fix cs' else cs'
  in
  { t with cs = merge_fix (drop_contained t.cs) }

let complement_naive t =
  (* not (c1 + c2 + ...) = not c1 * not c2 * ... ; each [not ci] is a sum
     of single-literal cubes; distribute and clean up. *)
  let complement_cube c =
    List.map (fun (i, phase) -> Cube.of_literals [ (i, not phase) ]) (Cube.literals c)
  in
  let product acc factor =
    List.concat_map
      (fun a -> List.filter_map (fun b -> Cube.intersect a b) factor)
      acc
    |> drop_contained
  in
  match t.cs with
  | [] -> const_true t.n
  | first :: rest ->
    let init = complement_cube first in
    if init = [] then const_false t.n
    else
      let cs =
        List.fold_left
          (fun acc c ->
            match complement_cube c with
            | [] -> []
            | factor -> product acc factor)
          init rest
      in
      minimize (create t.n cs)

(* ------------------------------------------------------------------ *)
(* Tautology by unate recursion.                                       *)
(* ------------------------------------------------------------------ *)

let cofactor_cover cs i v =
  (* cover cofactored on variable i = v: drop cubes with the opposite
     literal, erase the literal from the rest *)
  List.filter_map
    (fun (c : Cube.t) ->
      let bit = 1 lsl i in
      let has_pos = c.Cube.pos land bit <> 0 and has_neg = c.Cube.neg land bit <> 0 in
      if (v && has_neg) || ((not v) && has_pos) then None
      else Some { Cube.pos = c.Cube.pos land lnot bit; neg = c.Cube.neg land lnot bit })
    cs

let rec tautology_cover n cs =
  if List.exists (fun c -> c.Cube.pos = 0 && c.Cube.neg = 0) cs then true
  else if cs = [] then false
  else begin
    (* variable counts: pick the most binate variable (appears in both
       phases); a cover unate in every variable is a tautology iff it
       contains the universal cube (already checked) *)
    let pos_counts = Array.make n 0 and neg_counts = Array.make n 0 in
    List.iter
      (fun (c : Cube.t) ->
        for i = 0 to n - 1 do
          if c.Cube.pos land (1 lsl i) <> 0 then pos_counts.(i) <- pos_counts.(i) + 1;
          if c.Cube.neg land (1 lsl i) <> 0 then neg_counts.(i) <- neg_counts.(i) + 1
        done)
      cs;
    let best = ref (-1) in
    let best_score = ref (-1) in
    for i = 0 to n - 1 do
      if pos_counts.(i) > 0 && neg_counts.(i) > 0 then begin
        let score = pos_counts.(i) + neg_counts.(i) in
        if score > !best_score then begin
          best_score := score;
          best := i
        end
      end
    done;
    if !best < 0 then false (* unate, no universal cube *)
    else
      let i = !best in
      tautology_cover n (cofactor_cover cs i true)
      && tautology_cover n (cofactor_cover cs i false)
  end

let tautology t = tautology_cover t.n t.cs

let covers_cube t (c : Cube.t) =
  if Cube.is_contradictory c then true
  else begin
    (* cofactor the cover by the cube, then tautology-check *)
    let rec cof cs lits =
      match lits with
      | [] -> cs
      | (i, v) :: rest -> cof (cofactor_cover cs i v) rest
    in
    tautology_cover t.n (cof t.cs (Cube.literals c))
  end

(* ------------------------------------------------------------------ *)
(* ESPRESSO-style minimization (single output, no external DC set).    *)
(* ------------------------------------------------------------------ *)

let espresso t =
  let expand_cube cover (c : Cube.t) =
    (* greedily remove literals while the enlarged cube stays inside the
       cover's ON-set *)
    List.fold_left
      (fun acc (i, v) ->
        let bit = 1 lsl i in
        let without =
          if v then { acc with Cube.pos = acc.Cube.pos land lnot bit }
          else { acc with Cube.neg = acc.Cube.neg land lnot bit }
        in
        if covers_cube cover without then without else acc)
      c (Cube.literals c)
  in
  let irredundant cs =
    (* drop any cube covered by the union of the others (greedy, keeps
       earlier cubes first) *)
    let rec go kept = function
      | [] -> List.rev kept
      | c :: rest ->
        let others = { t with cs = List.rev_append kept rest } in
        if covers_cube others c then go kept rest else go (c :: kept) rest
    in
    (* larger cubes first so the small ones get dropped *)
    go []
      (List.sort
         (fun a b -> Int.compare (Cube.num_literals a) (Cube.num_literals b))
         cs)
  in
  let rec loop cover iterations =
    let expanded =
      drop_contained (List.map (fun c -> expand_cube cover c) cover.cs)
    in
    let pruned = irredundant expanded in
    let next = { cover with cs = pruned } in
    if iterations <= 1 || List.length pruned = List.length cover.cs then next
    else loop next (iterations - 1)
  in
  if t.cs = [] then t else loop (minimize t) 3

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun c -> Format.fprintf fmt "%s@," (Cube.to_string t.n c)) t.cs;
  Format.fprintf fmt "@]"
