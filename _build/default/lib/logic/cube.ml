type t = { pos : int; neg : int }

let universe = { pos = 0; neg = 0 }

let of_literals lits =
  List.fold_left
    (fun c (i, phase) ->
      if i < 0 || i > 61 then invalid_arg "Cube.of_literals";
      if phase then { c with pos = c.pos lor (1 lsl i) }
      else { c with neg = c.neg lor (1 lsl i) })
    universe lits

let literals c =
  let rec loop i acc =
    if i < 0 then acc
    else
      let acc =
        if c.pos land (1 lsl i) <> 0 then (i, true) :: acc
        else if c.neg land (1 lsl i) <> 0 then (i, false) :: acc
        else acc
      in
      loop (i - 1) acc
  in
  loop 61 []

let is_contradictory c = c.pos land c.neg <> 0

let num_literals c =
  let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
  pop c.pos 0 + pop c.neg 0

let eval c m = c.pos land lnot m = 0 && c.neg land m = 0

let contains a b = a.pos land lnot b.pos = 0 && a.neg land lnot b.neg = 0

let intersect a b =
  let c = { pos = a.pos lor b.pos; neg = a.neg lor b.neg } in
  if is_contradictory c then None else Some c

let distance a b =
  let opp = (a.pos land b.neg) lor (a.neg land b.pos) in
  let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
  pop opp 0

let merge a b =
  if distance a b <> 1 then None
  else
    let opp = (a.pos land b.neg) lor (a.neg land b.pos) in
    let a' = { pos = a.pos land lnot opp; neg = a.neg land lnot opp } in
    let b' = { pos = b.pos land lnot opp; neg = b.neg land lnot opp } in
    if a'.pos = b'.pos && a'.neg = b'.neg then Some a' else None

let to_tt n c =
  let tt = ref (Tt.const_true n) in
  List.iter
    (fun (i, phase) ->
      if i < n then
        let v = Tt.var n i in
        tt := Tt.and_ !tt (if phase then v else Tt.not_ v))
    (literals c);
  if is_contradictory c then Tt.const_false n else !tt

let to_string n c =
  String.init n (fun i ->
      if c.pos land (1 lsl i) <> 0 then '1'
      else if c.neg land (1 lsl i) <> 0 then '0'
      else '-')

let of_string s =
  let c = ref universe in
  String.iteri
    (fun i ch ->
      match ch with
      | '1' -> c := { !c with pos = !c.pos lor (1 lsl i) }
      | '0' -> c := { !c with neg = !c.neg lor (1 lsl i) }
      | '-' | 'x' | 'X' | '2' -> ()
      | _ -> invalid_arg "Cube.of_string")
    s;
  !c

let compare a b =
  let c = Int.compare a.pos b.pos in
  if c <> 0 then c else Int.compare a.neg b.neg

let equal a b = a.pos = b.pos && a.neg = b.neg
