lib/logic/sop.mli: Cube Format Tt
