lib/logic/sop.ml: Array Cube Format Int List Tt
