lib/logic/cube.mli: Tt
