lib/logic/bdd.mli:
