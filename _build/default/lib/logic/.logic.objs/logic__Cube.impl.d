lib/logic/cube.ml: Int List String Tt
