lib/logic/tt.ml: Array Format Hashtbl Int Int64 List Printf
