lib/logic/tt.mli: Format
