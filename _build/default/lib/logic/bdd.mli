(** Reduced ordered binary decision diagrams — the "global BDD"
    technology the paper positions itself against (its Section 1: other
    don't-care-exploiting methods require global BDDs; POWDER does not).
    Implemented as a baseline so the benchmark can compare BDD-based
    equivalence checking with the ATPG/SAT route.

    A manager owns the unique table and computed cache; nodes are
    hash-consed, so two equal functions are the same node.  Variables
    are ordered by their integer index.  A node budget guards against
    the exponential blow-ups (multipliers!) that motivated the paper's
    choice. *)

type manager
type t  (** a BDD handle; only meaningful with its manager *)

exception Node_limit_exceeded

val manager : ?node_limit:int -> unit -> manager
(** Default limit 1_000_000 live nodes; exceeding it raises
    {!Node_limit_exceeded} from the constructor that crossed it. *)

val bdd_true : manager -> t
val bdd_false : manager -> t
val var : manager -> int -> t

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val equal : t -> t -> bool
(** Constant-time: hash-consing makes equal functions identical. *)

val is_true : manager -> t -> bool
val is_false : manager -> t -> bool

val eval : manager -> t -> (int -> bool) -> bool
val size : manager -> t -> int
(** Nodes reachable from this root. *)

val live_nodes : manager -> int
(** Total nodes ever created in the manager. *)

val any_sat : manager -> t -> (int * bool) list option
(** A satisfying partial assignment (variable, value), or [None] for
    the constant-false function. *)

val sat_fraction : manager -> t -> num_vars:int -> float
(** Fraction of the [2^num_vars] minterms that satisfy the function —
    exact signal probability under uniform inputs. *)
