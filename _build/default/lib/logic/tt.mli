(** Truth tables over at most {!max_vars} variables, packed in one [int64].

    A table [t] with [n] vars assigns a bit to every minterm
    [m in 0 .. 2^n - 1]; bit [m] of the word is the function value when
    variable [i] takes bit [i] of [m].  All operations are total on
    tables of equal arity; combining tables of different arities raises
    [Invalid_argument]. *)

type t

val max_vars : int
(** Maximum supported number of variables (6). *)

val create : int -> int64 -> t
(** [create n word] is the table over [n] vars whose minterm bits are the
    low [2^n] bits of [word].  Higher bits are ignored.
    @raise Invalid_argument if [n < 0 || n > max_vars]. *)

val num_vars : t -> int

val word : t -> int64
(** Raw minterm word, masked to the low [2^n] bits. *)

val const_false : int -> t
val const_true : int -> t

val var : int -> int -> t
(** [var n i] is the projection on variable [i] among [n] vars. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val xnor : t -> t -> t

val eval : t -> bool array -> bool
(** [eval t inputs] with [Array.length inputs = num_vars t]. *)

val eval_int : t -> int -> bool
(** [eval_int t m] is bit [m] of the table. *)

val is_const_false : t -> bool
val is_const_true : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val cofactor : int -> bool -> t -> t
(** [cofactor i v t] fixes variable [i] to [v]; arity is preserved (the
    result no longer depends on var [i]). *)

val depends_on : t -> int -> bool

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val count_ones : t -> int
(** Number of satisfying minterms. *)

val permute : t -> int array -> t
(** [permute t perm] renames variable [i] of [t] to [perm.(i)].
    [perm] must be a permutation of [0 .. num_vars t - 1]. *)

val swap_adjacent : t -> int -> t
(** [swap_adjacent t i] exchanges variables [i] and [i+1]. *)

val project : t -> int list -> t
(** [project t vars] is the table over [List.length vars] variables
    obtained by keeping only [vars] (which must contain the support of
    [t], ascending); new variable [i] is old variable [List.nth vars i]. *)

val of_minterms : int -> int list -> t
(** [of_minterms n ms] has exactly the minterms [ms] set. *)

val minterms : t -> int list

val to_string : t -> string
(** Hex minterm word, e.g. ["6:0x8000000000000001"]. *)

val pp : Format.formatter -> t -> unit
