(** Cubes (product terms) over up to 62 variables.

    A cube stores two bitmasks: variables appearing positively and
    variables appearing negatively.  A variable present in both masks
    makes the cube contradictory (identically false). *)

type t = { pos : int; neg : int }

val universe : t
(** The empty product (constant true). *)

val of_literals : (int * bool) list -> t
(** [(i, phase)] adds literal [x_i] ([phase = true]) or [x_i'] to the
    product. *)

val literals : t -> (int * bool) list
(** Ascending by variable index. *)

val is_contradictory : t -> bool
val num_literals : t -> int
val eval : t -> int -> bool
(** [eval c m]: value of the product on minterm [m] (bit [i] of [m] is
    the value of variable [i]). *)

val contains : t -> t -> bool
(** [contains a b] iff every minterm of [b] is a minterm of [a]
    (i.e. [a]'s literals are a subset of [b]'s). *)

val intersect : t -> t -> t option
(** Product of two cubes, [None] if contradictory. *)

val distance : t -> t -> int
(** Number of variables on which the cubes have opposite literals. *)

val merge : t -> t -> t option
(** Consensus merge when distance is 1 and other literals agree:
    [ab + ab' = a]. *)

val to_tt : int -> t -> Tt.t
val to_string : int -> t -> string
(** PLA-style string of the first [n] variables, e.g. ["1-0"]. *)

val of_string : string -> t
(** Inverse of {!to_string}; accepts ['0'], ['1'], ['-']/['x'].
    @raise Invalid_argument on other characters. *)

val compare : t -> t -> int
val equal : t -> t -> bool
