lib/power/glitch.mli: Format Netlist
