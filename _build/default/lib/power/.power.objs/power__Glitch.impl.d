lib/power/glitch.ml: Array Float Format Gatelib List Map Netlist Sim Sta
