lib/power/estimator.mli: Netlist Sim
