lib/power/estimator.ml: Array Int64 List Netlist Sim
