(** Timed (transport-delay) power estimation — the effect the paper's
    zero-delay model deliberately ignores (it cites glitching at
    roughly 20% of total power but hard to model before layout).

    Random vector pairs are applied to the circuit; an event-driven
    simulation under the linear gate-delay model counts {e every}
    output transition, hazards included.  Comparing against the
    zero-delay count of the same vector pairs isolates the glitch
    contribution, letting the benchmark report how POWDER's
    optimizations affect it. *)

type report = {
  zero_delay_switched_cap : float;
      (** [sum C(i) * E(i)] over the vector pairs, functional
          transitions only *)
  timed_switched_cap : float;  (** same, counting every timed event *)
  glitch_fraction : float;
      (** [(timed - zero_delay) / timed], 0 when no glitches *)
  pairs : int;
}

val estimate :
  ?pairs:int ->
  ?seed:int64 ->
  ?input_prob:(string -> float) ->
  Netlist.Circuit.t ->
  report
(** Default 256 vector pairs. *)

val pp_report : Format.formatter -> report -> unit
