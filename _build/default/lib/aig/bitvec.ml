module G = Graph

type t = G.lit array

let input g name w =
  Array.init w (fun i -> G.add_pi g (Printf.sprintf "%s_%d" name i))

let const g value ~width =
  ignore g;
  Array.init width (fun i ->
      if value land (1 lsl i) <> 0 then G.lit_true else G.lit_false)

let width = Array.length

let check2 a b = if width a <> width b then invalid_arg "Bitvec: width mismatch"

let not_ a = Array.map G.compl_ a
let and_ g a b = check2 a b; Array.map2 (G.and_ g) a b
let or_ g a b = check2 a b; Array.map2 (G.or_ g) a b
let xor g a b = check2 a b; Array.map2 (G.xor g) a b

let full_adder g a b c =
  let s = G.xor g (G.xor g a b) c in
  let cout = G.or_ g (G.and_ g a b) (G.and_ g c (G.xor g a b)) in
  (s, cout)

let add g ?(carry_in = G.lit_false) a b =
  check2 a b;
  let w = width a in
  let sum = Array.make w G.lit_false in
  let carry = ref carry_in in
  for i = 0 to w - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let sub g a b =
  let diff, carry = add g ~carry_in:G.lit_true a (not_ b) in
  (diff, carry)

let mux g sel a b = check2 a b; Array.map2 (fun x y -> G.mux g ~sel ~t1:x ~e0:y) a b

let eq g a b =
  check2 a b;
  G.and_list g (Array.to_list (Array.map2 (fun x y -> G.compl_ (G.xor g x y)) a b))

let lt g a b =
  (* a < b unsigned: not (a >= b) *)
  let _, geq = sub g a b in
  G.compl_ geq

let reduce_and g a = G.and_list g (Array.to_list a)
let reduce_or g a = G.or_list g (Array.to_list a)
let reduce_xor g a = G.xor_list g (Array.to_list a)

let rec popcount g v =
  match width v with
  | 0 -> [||]
  | 1 -> [| v.(0) |]
  | w ->
    let half = w / 2 in
    let lo = popcount g (Array.sub v 0 half) in
    let hi = popcount g (Array.sub v half (w - half)) in
    let m = max (Array.length lo) (Array.length hi) + 1 in
    let pad x = Array.init m (fun i -> if i < Array.length x then x.(i) else G.lit_false) in
    let sum, carry = add g (pad lo) (pad hi) in
    ignore carry;
    (* trim leading constant-zero bits beyond ceil(log2 (w+1)) *)
    let needed =
      let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
      bits w 0
    in
    Array.sub sum 0 (min needed (Array.length sum))

let rotate_left_var g v amount =
  let w = width v in
  let stages = ref v in
  let bits_needed =
    let rec bits n acc = if 1 lsl acc >= n then acc else bits n (acc + 1) in
    bits w 0
  in
  for k = 0 to min (Array.length amount) bits_needed - 1 do
    let shift = 1 lsl k in
    let rotated = Array.init w (fun i -> !stages.((i - shift + (w * 2)) mod w)) in
    stages := mux g amount.(k) rotated !stages
  done;
  !stages

let shift_left_var g v amount =
  let w = width v in
  let stages = ref v in
  let bits_needed =
    let rec bits n acc = if 1 lsl acc >= n then acc else bits n (acc + 1) in
    bits w 0
  in
  for k = 0 to min (Array.length amount) bits_needed - 1 do
    let shift = 1 lsl k in
    let shifted =
      Array.init w (fun i -> if i < shift then G.lit_false else !stages.(i - shift))
    in
    stages := mux g amount.(k) shifted !stages
  done;
  !stages

let outputs g name v =
  Array.iteri (fun i l -> G.add_po g (Printf.sprintf "%s_%d" name i) l) v
