module G = Graph

let copy_po_names src dst mapping =
  List.iter (fun (name, l) -> G.add_po dst name (mapping l)) (G.pos src)

let rebuild src =
  let dst = G.create () in
  let lits = Hashtbl.create 64 in
  List.iter (fun (name, l) -> Hashtbl.add lits (G.node_of l) (G.add_pi dst name))
    (G.pis src);
  let rec map_node n =
    match Hashtbl.find_opt lits n with
    | Some l -> l
    | None ->
      let l =
        match G.node_fanins src n with
        | None -> G.lit_false (* constant node *)
        | Some (a, b) -> G.and_ dst (map_lit a) (map_lit b)
      in
      Hashtbl.add lits n l;
      l
  and map_lit l =
    let m = map_node (G.node_of l) in
    if G.is_complement l then G.compl_ m else m
  in
  copy_po_names src dst map_lit;
  dst

let balance src =
  let refs = G.fanout_count src in
  let dst = G.create () in
  let lits = Hashtbl.create 64 in
  List.iter (fun (name, l) -> Hashtbl.add lits (G.node_of l) (G.add_pi dst name))
    (G.pis src);
  (* leaves of the conjunction tree rooted at [n]: expand positive AND
     children that have no other fanout *)
  let conj_leaves n =
    let leaves = ref [] in
    let rec walk l ~root =
      let nd = G.node_of l in
      match G.node_fanins src nd with
      | Some (a, b)
        when (not (G.is_complement l)) && (root || refs.(nd) <= 1) ->
        walk a ~root:false;
        walk b ~root:false
      | Some _ | None -> leaves := l :: !leaves
    in
    walk (G.lit_of_node n false) ~root:true;
    !leaves
  in
  let rec map_node n =
    match Hashtbl.find_opt lits n with
    | Some l -> l
    | None ->
      let l =
        match G.node_fanins src n with
        | None -> G.lit_false
        | Some _ ->
          let leaves = conj_leaves n in
          let mapped = List.map map_lit leaves in
          (* deepest first so the balanced tree evens out arrival depth *)
          let levels = G.level dst in
          let depth l =
            let nd = G.node_of l in
            if nd < Array.length levels then levels.(nd) else 0
          in
          let sorted =
            List.sort (fun a b -> Int.compare (depth a) (depth b)) mapped
          in
          G.and_list dst sorted
      in
      Hashtbl.add lits n l;
      l
  and map_lit l =
    let m = map_node (G.node_of l) in
    if G.is_complement l then G.compl_ m else m
  in
  copy_po_names src dst map_lit;
  dst
