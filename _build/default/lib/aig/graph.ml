type lit = int

type node_kind = Const0 | Pi of string | And of lit * lit

type t = {
  mutable kinds : node_kind array;
  mutable count : int;
  strash : (lit * lit, int) Hashtbl.t;
  mutable pis_rev : (string * lit) list;
  mutable pos_rev : (string * lit) list;
}

let lit_false = 0
let lit_true = 1
let node_of l = l lsr 1
let is_complement l = l land 1 = 1
let compl_ l = l lxor 1
let lit_of_node n c = (2 * n) lor (if c then 1 else 0)

let create () =
  {
    kinds = Array.make 64 Const0;
    count = 1;
    strash = Hashtbl.create 64;
    pis_rev = [];
    pos_rev = [];
  }

let grow t =
  if t.count = Array.length t.kinds then begin
    let bigger = Array.make (2 * Array.length t.kinds) Const0 in
    Array.blit t.kinds 0 bigger 0 t.count;
    t.kinds <- bigger
  end

let alloc t kind =
  grow t;
  let n = t.count in
  t.kinds.(n) <- kind;
  t.count <- t.count + 1;
  n

let add_pi t name =
  let l = lit_of_node (alloc t (Pi name)) false in
  t.pis_rev <- (name, l) :: t.pis_rev;
  l

let pis t = List.rev t.pis_rev

let and_ t a b =
  (* constant folding *)
  if a = lit_false || b = lit_false then lit_false
  else if a = lit_true then b
  else if b = lit_true then a
  else if a = b then a
  else if a = compl_ b then lit_false
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.strash (a, b) with
    | Some n -> lit_of_node n false
    | None ->
      let n = alloc t (And (a, b)) in
      Hashtbl.add t.strash (a, b) n;
      lit_of_node n false
  end

let or_ t a b = compl_ (and_ t (compl_ a) (compl_ b))
let xor t a b = or_ t (and_ t a (compl_ b)) (and_ t (compl_ a) b)
let mux t ~sel ~t1 ~e0 = or_ t (and_ t sel t1) (and_ t (compl_ sel) e0)

let balanced_fold op neutral t lits =
  (* fold as a balanced tree to keep depth logarithmic *)
  let rec reduce = function
    | [] -> neutral
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | a :: b :: rest -> op t a b :: pair rest
        | ([ _ ] | []) as tail -> tail
      in
      reduce (pair xs)
  in
  reduce lits

let and_list t lits = balanced_fold and_ lit_true t lits
let or_list t lits = balanced_fold or_ lit_false t lits
let xor_list t lits = balanced_fold xor lit_false t lits

let add_po t name l = t.pos_rev <- (name, l) :: t.pos_rev
let pos t = List.rev t.pos_rev

let num_nodes t = t.count

let num_ands t =
  let n = ref 0 in
  for i = 0 to t.count - 1 do
    match t.kinds.(i) with And _ -> incr n | Const0 | Pi _ -> ()
  done;
  !n

let node_fanins t n =
  match t.kinds.(n) with And (a, b) -> Some (a, b) | Const0 | Pi _ -> None

let pi_name t n = match t.kinds.(n) with Pi s -> Some s | Const0 | And _ -> None

let fanout_count t =
  let counts = Array.make t.count 0 in
  for i = 0 to t.count - 1 do
    match t.kinds.(i) with
    | And (a, b) ->
      counts.(node_of a) <- counts.(node_of a) + 1;
      counts.(node_of b) <- counts.(node_of b) + 1
    | Const0 | Pi _ -> ()
  done;
  List.iter (fun (_, l) -> counts.(node_of l) <- counts.(node_of l) + 1) t.pos_rev;
  counts

let eval_values t pi_values =
  let named = List.combine (List.map fst (pis t)) (Array.to_list pi_values) in
  let values = Array.make t.count false in
  for i = 1 to t.count - 1 do
    match t.kinds.(i) with
    | Const0 -> ()
    | Pi name -> values.(i) <- List.assoc name named
    | And (a, b) ->
      let va = values.(node_of a) <> is_complement a in
      let vb = values.(node_of b) <> is_complement b in
      values.(i) <- va && vb
  done;
  values

let eval_lit t pi_values l =
  let values = eval_values t pi_values in
  values.(node_of l) <> is_complement l

let eval t pi_values =
  let values = eval_values t pi_values in
  List.map
    (fun (name, l) -> (name, values.(node_of l) <> is_complement l))
    (pos t)

let level t =
  let levels = Array.make t.count 0 in
  for i = 1 to t.count - 1 do
    match t.kinds.(i) with
    | Const0 | Pi _ -> ()
    | And (a, b) ->
      levels.(i) <- 1 + max levels.(node_of a) levels.(node_of b)
  done;
  levels

let pp_stats fmt t =
  let levels = level t in
  let depth = Array.fold_left max 0 levels in
  Format.fprintf fmt "ands=%d pis=%d pos=%d depth=%d" (num_ands t)
    (List.length t.pis_rev) (List.length t.pos_rev) depth
