(** Technology-independent logic networks: named nodes carrying
    sum-of-products covers over named fanins.  This is the exchange
    format between the benchmark generators, the BLIF reader and the
    AIG builder. *)

type node = {
  name : string;
  fanins : string list;  (** SOP variable [i] is [List.nth fanins i] *)
  sop : Logic.Sop.t;
}

type t = {
  model : string;
  inputs : string list;
  outputs : string list;
  nodes : node list;  (** any order; must form a DAG *)
}

val validate : t -> (unit, string) result
(** Signals defined exactly once, no combinational cycles, outputs
    defined, fanins within SOP arity. *)

val to_aig : t -> Graph.t
(** Elaborate; @raise Invalid_argument when {!validate} fails. *)

val minimize : t -> t
(** Apply two-level minimization ({!Logic.Sop.espresso}) to every node
    cover — the classic technology-independent cleanup step before
    elaboration. *)

val node_count : t -> int
val literal_count : t -> int
