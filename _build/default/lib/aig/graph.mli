(** And-Inverter Graphs with structural hashing and constant folding —
    the technology-independent form the synthesis flow optimizes before
    mapping.

    Literals encode node and phase: [lit = 2*node + (complemented ? 1 : 0)].
    Node 0 is the constant FALSE, so [lit 0] = false and [lit 1] = true. *)

type t
type lit = int

val create : unit -> t

val lit_false : lit
val lit_true : lit
val node_of : lit -> int
val is_complement : lit -> bool
val compl_ : lit -> lit
val lit_of_node : int -> bool -> lit

val add_pi : t -> string -> lit
val pis : t -> (string * lit) list

val and_ : t -> lit -> lit -> lit
(** Structural-hashed and constant-folded conjunction. *)

val or_ : t -> lit -> lit -> lit
val xor : t -> lit -> lit -> lit
val mux : t -> sel:lit -> t1:lit -> e0:lit -> lit
val and_list : t -> lit list -> lit
(** Balanced conjunction tree (empty list = true). *)

val or_list : t -> lit list -> lit
val xor_list : t -> lit list -> lit

val add_po : t -> string -> lit -> unit
val pos : t -> (string * lit) list

val num_nodes : t -> int
(** Allocated nodes including constants and PIs. *)

val num_ands : t -> int

val node_fanins : t -> int -> (lit * lit) option
(** [Some (l0, l1)] for an AND node, [None] for PI/const. *)

val pi_name : t -> int -> string option

val fanout_count : t -> int array
(** Structural fanout references per node (POs included). *)

val eval : t -> bool array -> (string * bool) list
(** Evaluate all POs for PI values given in [pis] order. *)

val eval_lit : t -> bool array -> lit -> bool

val level : t -> int array
(** Logic depth per node. *)

val pp_stats : Format.formatter -> t -> unit
