(** Word-level construction helpers over {!Graph}: little-endian bit
    vectors of literals.  Used by the benchmark-circuit generators. *)

type t = Graph.lit array

val input : Graph.t -> string -> int -> t
(** [input g name w] creates PIs [name_0 .. name_{w-1}]. *)

val const : Graph.t -> int -> width:int -> t
val width : t -> int

val not_ : t -> t
val and_ : Graph.t -> t -> t -> t
val or_ : Graph.t -> t -> t -> t
val xor : Graph.t -> t -> t -> t

val add : Graph.t -> ?carry_in:Graph.lit -> t -> t -> t * Graph.lit
(** Ripple-carry sum and carry-out; operands must share a width. *)

val sub : Graph.t -> t -> t -> t * Graph.lit
(** Two's-complement subtraction; the returned literal is the borrow-free
    flag (1 when [a >= b] unsigned). *)

val mux : Graph.t -> Graph.lit -> t -> t -> t
(** [mux g sel a b] is [a] when [sel] = 1 else [b]. *)

val eq : Graph.t -> t -> t -> Graph.lit
val lt : Graph.t -> t -> t -> Graph.lit
(** Unsigned less-than. *)

val reduce_and : Graph.t -> t -> Graph.lit
val reduce_or : Graph.t -> t -> Graph.lit
val reduce_xor : Graph.t -> t -> Graph.lit

val popcount : Graph.t -> t -> t
(** Binary count of set bits ([ceil log2 (w+1)] result bits). *)

val rotate_left_var : Graph.t -> t -> t -> t
(** [rotate_left_var g v amount]: barrel rotator; rotation amount is a
    bit vector (only [log2 (width v)] low bits used). *)

val shift_left_var : Graph.t -> t -> t -> t
(** Variable left shift filling with zeros. *)

val outputs : Graph.t -> string -> t -> unit
(** Add POs [name_0 .. name_{w-1}]. *)
