(** Technology-independent AIG optimization: the "optimization of the
    Boolean network" phase of the paper's Figure 1 flow.

    [balance] rebuilds every conjunction tree as a depth-balanced tree
    (single-fanout pure-AND chains are flattened first), which both
    reduces logic depth before mapping and re-shares structure through
    strashing.  [sweep] is implied: only logic reachable from the
    primary outputs survives the rebuild. *)

val balance : Graph.t -> Graph.t

val rebuild : Graph.t -> Graph.t
(** Plain copy through the strash table: drops dead nodes and re-shares
    duplicated structure without changing tree shapes. *)
