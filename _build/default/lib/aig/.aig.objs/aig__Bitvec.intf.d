lib/aig/bitvec.mli: Graph
