lib/aig/bitvec.ml: Array Graph Printf
