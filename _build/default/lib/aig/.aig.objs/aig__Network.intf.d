lib/aig/network.mli: Graph Logic
