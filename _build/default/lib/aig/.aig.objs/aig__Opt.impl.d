lib/aig/opt.ml: Array Graph Hashtbl Int List
