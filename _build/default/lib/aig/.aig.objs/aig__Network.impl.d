lib/aig/network.ml: Array Graph Hashtbl List Logic Printf Result
