module Sop = Logic.Sop
module Cube = Logic.Cube

type node = { name : string; fanins : string list; sop : Sop.t }

type t = {
  model : string;
  inputs : string list;
  outputs : string list;
  nodes : node list;
}

let ( let* ) = Result.bind

let validate t =
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let defined = Hashtbl.create 64 in
  let register name what =
    if Hashtbl.mem defined name then error "signal %s defined twice" name
    else begin
      Hashtbl.add defined name what;
      Ok ()
    end
  in
  let rec register_all f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      register_all f rest
  in
  let* () = register_all (fun i -> register i `Pi) t.inputs in
  let* () = register_all (fun n -> register n.name (`Node n)) t.nodes in
  let* () =
    register_all
      (fun o ->
        if Hashtbl.mem defined o then Ok () else error "output %s undefined" o)
      t.outputs
  in
  let* () =
    register_all
      (fun n ->
        if Sop.num_vars n.sop <> List.length n.fanins then
          error "node %s: arity mismatch" n.name
        else
          register_all
            (fun f ->
              if Hashtbl.mem defined f then Ok ()
              else error "node %s: undefined fanin %s" n.name f)
            n.fanins)
      t.nodes
  in
  (* cycle check by DFS from the outputs *)
  let state = Hashtbl.create 64 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> Ok ()
    | Some `Active -> error "combinational cycle through %s" name
    | None -> (
      match Hashtbl.find_opt defined name with
      | Some (`Node n) ->
        Hashtbl.add state name `Active;
        let* () = register_all visit n.fanins in
        Hashtbl.replace state name `Done;
        Ok ()
      | Some `Pi | None ->
        Hashtbl.replace state name `Done;
        Ok ())
  in
  register_all visit t.outputs

let to_aig t =
  (match validate t with
  | Ok () -> ()
  | Error e -> invalid_arg ("Network.to_aig: " ^ e));
  let g = Graph.create () in
  let lits = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.add lits i (Graph.add_pi g i)) t.inputs;
  let by_name = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.add by_name n.name n) t.nodes;
  let rec lit_of name =
    match Hashtbl.find_opt lits name with
    | Some l -> l
    | None ->
      let n = Hashtbl.find by_name name in
      let fanin_lits = List.map lit_of n.fanins in
      let fanin_arr = Array.of_list fanin_lits in
      let cube_lit c =
        Graph.and_list g
          (List.map
             (fun (i, phase) ->
               let l = fanin_arr.(i) in
               if phase then l else Graph.compl_ l)
             (Cube.literals c))
      in
      let l = Graph.or_list g (List.map cube_lit (Sop.cubes n.sop)) in
      Hashtbl.add lits name l;
      l
  in
  List.iter (fun o -> Graph.add_po g o (lit_of o)) t.outputs;
  g

let minimize t =
  { t with nodes = List.map (fun n -> { n with sop = Sop.espresso n.sop }) t.nodes }

let node_count t = List.length t.nodes

let literal_count t =
  List.fold_left (fun acc n -> acc + Sop.num_literals n.sop) 0 t.nodes
