lib/sta/timing.mli: Format Netlist
