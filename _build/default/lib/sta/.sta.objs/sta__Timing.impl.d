lib/sta/timing.ml: Array Float Format Gatelib List Netlist
