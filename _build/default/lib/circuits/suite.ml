type provenance =
  | Exact_function
  | Structured_analog
  | Seeded_pla
  | Seeded_multilevel

type spec = {
  name : string;
  description : string;
  provenance : provenance;
  build : unit -> Aig.Graph.t;
}

let provenance_name = function
  | Exact_function -> "exact"
  | Structured_analog -> "analog"
  | Seeded_pla -> "pla"
  | Seeded_multilevel -> "multilevel"

let exact name description build = { name; description; provenance = Exact_function; build }
let analog name description build = { name; description; provenance = Structured_analog; build }
let pla_spec name description ~seed ~ins ~outs ~cubes ~lit_lo ~lit_hi =
  {
    name;
    description;
    provenance = Seeded_pla;
    build = (fun () -> Generators.pla ~seed ~ins ~outs ~cubes ~lit_lo ~lit_hi);
  }
let ml_spec name description ~seed ~ins ~outs ~layers ~per_layer ~fanin =
  {
    name;
    description;
    provenance = Seeded_multilevel;
    build =
      (fun () -> Generators.multilevel ~seed ~ins ~outs ~layers ~per_layer ~fanin);
  }

let all =
  [
    exact "comp" "8-bit magnitude comparator" (fun () ->
        Generators.comparator ~width:8);
    exact "Z5xp1" "7-bit x*x + x arithmetic" (fun () ->
        Generators.square_plus ~width:7);
    exact "clip" "9-to-5 bit saturating clip" (fun () ->
        Generators.clip ~in_bits:9 ~out_bits:5);
    pla_spec "frg1" "random PLA stand-in" ~seed:101 ~ins:20 ~outs:3 ~cubes:40
      ~lit_lo:3 ~lit_hi:8;
    ml_spec "c8" "random multilevel stand-in" ~seed:102 ~ins:20 ~outs:14
      ~layers:3 ~per_layer:14 ~fanin:3;
    pla_spec "term1" "random PLA stand-in" ~seed:103 ~ins:18 ~outs:10 ~cubes:45
      ~lit_lo:2 ~lit_hi:7;
    exact "f51m" "4x4 multiplier (low byte)" (fun () ->
        Generators.multiplier ~width:4);
    exact "rd84" "8-input weight function" (fun () -> Generators.rd ~inputs:8);
    pla_spec "bw" "random PLA stand-in" ~seed:104 ~ins:5 ~outs:24 ~cubes:36
      ~lit_lo:2 ~lit_hi:5;
    ml_spec "ttt2" "random multilevel stand-in" ~seed:105 ~ins:22 ~outs:16
      ~layers:3 ~per_layer:16 ~fanin:3;
    analog "C432" "27-channel priority interrupt" (fun () ->
        Generators.priority_interrupt ());
    ml_spec "i2" "wide and-or logic stand-in" ~seed:106 ~ins:40 ~outs:1
      ~layers:2 ~per_layer:24 ~fanin:4;
    exact "Z9sym" "9-input symmetric (two-level form)" (fun () ->
        Generators.sym9_twolevel ());
    ml_spec "apex7" "random multilevel stand-in" ~seed:107 ~ins:36 ~outs:24
      ~layers:3 ~per_layer:20 ~fanin:3;
    exact "alu4tl" "74181 4-bit ALU" (fun () -> Generators.alu181 ());
    exact "9sym" "9-input symmetric (popcount form)" (fun () ->
        Generators.sym9 ());
    exact "9symml" "9-input symmetric (serial-count form)" (fun () ->
        Generators.sym9_chain ());
    pla_spec "x1" "random PLA stand-in" ~seed:108 ~ins:30 ~outs:20 ~cubes:60
      ~lit_lo:2 ~lit_hi:6;
    ml_spec "example2" "random multilevel stand-in" ~seed:109 ~ins:40 ~outs:30
      ~layers:3 ~per_layer:22 ~fanin:3;
    pla_spec "ex5" "random PLA stand-in" ~seed:110 ~ins:8 ~outs:30 ~cubes:60
      ~lit_lo:3 ~lit_hi:6;
    exact "alu2" "4-bit 4-op ALU" (fun () -> Generators.alu_small ());
    pla_spec "x4" "random PLA stand-in" ~seed:111 ~ins:40 ~outs:30 ~cubes:70
      ~lit_lo:2 ~lit_hi:5;
    analog "C880" "8-bit 8-op ALU" (fun () -> Generators.alu8 ());
    analog "C1355" "Hamming-style error corrector" (fun () ->
        Generators.hamming ());
    pla_spec "duke2" "random PLA stand-in" ~seed:112 ~ins:22 ~outs:26 ~cubes:80
      ~lit_lo:3 ~lit_hi:8;
    pla_spec "pdc" "random PLA stand-in" ~seed:113 ~ins:16 ~outs:30 ~cubes:90
      ~lit_lo:3 ~lit_hi:8;
    analog "rot" "16-bit barrel rotator" (fun () ->
        Generators.rotator ~width:16);
    analog "dalu" "dual-lane 8-bit ALU" (fun () -> Generators.dual_alu ());
    exact "t481" "16-input t481-style function (redundant start)" (fun () ->
        Generators.t481_bloated ());
    pla_spec "spla" "random PLA stand-in" ~seed:114 ~ins:16 ~outs:40 ~cubes:110
      ~lit_lo:3 ~lit_hi:8;
    pla_spec "misex3" "random PLA stand-in" ~seed:115 ~ins:14 ~outs:14
      ~cubes:100 ~lit_lo:3 ~lit_hi:9;
    ml_spec "frg2" "random multilevel stand-in" ~seed:116 ~ins:28 ~outs:24
      ~layers:4 ~per_layer:24 ~fanin:3;
    exact "alu4" "74181 4-bit ALU (remapped seed)" (fun () ->
        Generators.alu181 ());
    analog "pair" "paired adders with checksum" (fun () ->
        Generators.adder_pair ~width:10);
    ml_spec "x3" "random multilevel stand-in" ~seed:117 ~ins:40 ~outs:30
      ~layers:4 ~per_layer:26 ~fanin:3;
    pla_spec "apex1" "random PLA stand-in" ~seed:118 ~ins:26 ~outs:30
      ~cubes:120 ~lit_lo:3 ~lit_hi:9;
    pla_spec "cps" "random PLA stand-in" ~seed:119 ~ins:24 ~outs:40 ~cubes:130
      ~lit_lo:3 ~lit_hi:9;
    analog "des" "two toy Feistel rounds" (fun () -> Generators.feistel ());
  ]

let fig6_names =
  [
    "comp"; "Z5xp1"; "clip"; "f51m"; "rd84"; "C432"; "Z9sym"; "alu4tl";
    "9sym"; "alu2"; "C880"; "C1355"; "rot"; "dalu"; "t481"; "misex3";
    "pair"; "des";
  ]

let find name = List.find_opt (fun s -> s.name = name) all

let mapped ?(objective = Mapper.Techmap.Power) ?(input_prob = fun _ -> 0.5) spec =
  (* the paper's Figure 1 flow: technology-independent optimization,
     then (power-aware) technology mapping *)
  let g = Aig.Opt.balance (spec.build ()) in
  Mapper.Techmap.map ~objective ~input_prob Gatelib.Library.lib2 g
