lib/circuits/suite.ml: Aig Gatelib Generators List Mapper
