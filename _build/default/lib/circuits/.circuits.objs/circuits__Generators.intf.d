lib/circuits/generators.mli: Aig
