lib/circuits/generators.ml: Aig Array Int64 List Printf
