lib/circuits/suite.mli: Aig Mapper Netlist
