(** The benchmark suite mirroring the paper's Table 1 circuit list.

    Each entry carries the circuit name used in the paper, a builder
    for its (functional or statistical) stand-in, and the provenance of
    the substitution. *)

type provenance =
  | Exact_function     (** public function reproduced bit-exactly *)
  | Structured_analog  (** same circuit family, re-derived structure *)
  | Seeded_pla         (** deterministic random two-level stand-in *)
  | Seeded_multilevel  (** deterministic random multi-level stand-in *)

type spec = {
  name : string;
  description : string;
  provenance : provenance;
  build : unit -> Aig.Graph.t;
}

val all : spec list
(** Full Table 1 suite, in a stable order. *)

val fig6_names : string list
(** The 18-circuit subset used for the power-delay trade-off (Fig. 6). *)

val find : string -> spec option
val provenance_name : provenance -> string

val mapped :
  ?objective:Mapper.Techmap.objective ->
  ?input_prob:(string -> float) ->
  spec ->
  Netlist.Circuit.t
(** Build and technology-map onto {!Gatelib.Library.lib2} (the paper's
    POSE-produced starting point stand-in). *)
