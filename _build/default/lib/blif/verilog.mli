(** Structural Verilog writer for mapped netlists: one module, one cell
    instantiation per gate, positional pins named [a b c ... ] and
    output [O] (matching the BLIF [.gate] convention).  Constants are
    emitted as [1'b0]/[1'b1] assigns; names are sanitized to Verilog
    identifiers. *)

val circuit_to_string : ?module_name:string -> Netlist.Circuit.t -> string
val circuit_to_file : ?module_name:string -> string -> Netlist.Circuit.t -> unit
