module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell

let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let mapped = String.map (fun c -> if ok c then c else '_') name in
  if mapped = "" then "_"
  else if
    (mapped.[0] >= '0' && mapped.[0] <= '9') || mapped.[0] = '_'
  then "n" ^ mapped
  else mapped

let circuit_to_string ?(module_name = "mapped") circ =
  let buf = Buffer.create 2048 in
  let names = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let name_of id =
    match Hashtbl.find_opt names id with
    | Some n -> n
    | None ->
      let base = sanitize (Circuit.name circ id) in
      let rec unique candidate k =
        if Hashtbl.mem used candidate then
          unique (Printf.sprintf "%s_%d" base k) (k + 1)
        else candidate
      in
      let n = unique base 1 in
      Hashtbl.add used n ();
      Hashtbl.add names id n;
      n
  in
  let pis = Circuit.pis circ and pos = Circuit.pos circ in
  let ports =
    List.map name_of pis @ List.map name_of pos |> String.concat ", "
  in
  Buffer.add_string buf (Printf.sprintf "module %s(%s);\n" module_name ports);
  List.iter
    (fun pi -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (name_of pi)))
    pis;
  List.iter
    (fun po -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (name_of po)))
    pos;
  (* wires for internal cells and constants *)
  Circuit.iter_live circ (fun id ->
      match Circuit.kind circ id with
      | Circuit.Cell _ | Circuit.Const _ ->
        Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (name_of id))
      | Circuit.Pi | Circuit.Po _ -> ());
  Buffer.add_char buf '\n';
  Circuit.iter_live circ (fun id ->
      match Circuit.kind circ id with
      | Circuit.Const b ->
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = 1'b%d;\n" (name_of id)
             (if b then 1 else 0))
      | Circuit.Cell (c, fs) ->
        let conns =
          Array.to_list
            (Array.mapi
               (fun i f ->
                 Printf.sprintf ".%s(%s)" (Blif_io.pin_name i) (name_of f))
               fs)
          @ [ Printf.sprintf ".O(%s)" (name_of id) ]
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s %s (%s);\n" c.Cell.name
             ("u_" ^ name_of id)
             (String.concat ", " conns))
      | Circuit.Pi | Circuit.Po _ -> ());
  Buffer.add_char buf '\n';
  List.iter
    (fun po ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (name_of po)
           (name_of (Circuit.po_driver circ po))))
    pos;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let circuit_to_file ?module_name path circ =
  let oc = open_out path in
  output_string oc (circuit_to_string ?module_name circ);
  close_out oc
