lib/blif/blif_io.mli: Aig Gatelib Netlist
