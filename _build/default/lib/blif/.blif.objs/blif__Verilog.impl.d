lib/blif/verilog.ml: Array Blif_io Buffer Gatelib Hashtbl List Netlist Printf String
