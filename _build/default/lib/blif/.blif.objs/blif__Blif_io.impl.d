lib/blif/blif_io.ml: Aig Array Buffer Char Gatelib Hashtbl List Logic Netlist Printf Result String
