lib/blif/verilog.mli: Netlist
