(** BLIF-subset reader/writer.

    Logic networks use [.model/.inputs/.outputs/.names/.end] with
    PLA-style rows (['0' '1' '-'] columns, output column ['1'] for
    on-set rows or ['0'] for off-set rows — a node mixes only one kind).
    Mapped netlists use [.gate <cell> <pin>=<net> ... O=<net>] lines,
    where cell pins are positionally named [a b c d e f] and the output
    pin is [O].  Line continuations with [\ ] are handled; [#] starts a
    comment. *)

val network_of_string : string -> (Aig.Network.t, string) result
val network_of_file : string -> (Aig.Network.t, string) result
val network_to_string : Aig.Network.t -> string
val network_to_file : string -> Aig.Network.t -> unit

val circuit_of_string :
  Gatelib.Library.t -> string -> (Netlist.Circuit.t, string) result
val circuit_of_file :
  Gatelib.Library.t -> string -> (Netlist.Circuit.t, string) result
val circuit_to_string : Netlist.Circuit.t -> string
val circuit_to_file : string -> Netlist.Circuit.t -> unit

val pin_name : int -> string
(** Positional pin naming used in [.gate] lines: 0 -> "a", 1 -> "b", … *)
