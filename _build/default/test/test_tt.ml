module Tt = Logic.Tt

let tt = Alcotest.testable Tt.pp Tt.equal

let test_vars_and_consts () =
  Alcotest.(check bool) "const_false is false" true (Tt.is_const_false (Tt.const_false 3));
  Alcotest.(check bool) "const_true is true" true (Tt.is_const_true (Tt.const_true 3));
  for i = 0 to 2 do
    for m = 0 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "var %d minterm %d" i m)
        (m land (1 lsl i) <> 0)
        (Tt.eval_int (Tt.var 3 i) m)
    done
  done

let test_ops_pointwise () =
  let a = Tt.var 3 0 and b = Tt.var 3 1 and c = Tt.var 3 2 in
  let f = Tt.or_ (Tt.and_ a b) (Tt.xor b c) in
  for m = 0 to 7 do
    let va = m land 1 <> 0 and vb = m land 2 <> 0 and vc = m land 4 <> 0 in
    Alcotest.(check bool)
      (Printf.sprintf "minterm %d" m)
      ((va && vb) || vb <> vc)
      (Tt.eval_int f m)
  done

let test_eval_array () =
  let f = Tt.nand (Tt.var 2 0) (Tt.var 2 1) in
  Alcotest.(check bool) "nand 00" true (Tt.eval f [| false; false |]);
  Alcotest.(check bool) "nand 11" false (Tt.eval f [| true; true |])

let test_cofactor () =
  let a = Tt.var 3 0 and b = Tt.var 3 1 in
  let f = Tt.or_ (Tt.and_ a b) (Tt.not_ a) in
  Alcotest.check tt "f|a=1 = b" (Tt.var 3 1) (Tt.cofactor 0 true f);
  Alcotest.check tt "f|a=0 = 1" (Tt.const_true 3) (Tt.cofactor 0 false f)

let test_support () =
  let a = Tt.var 4 0 and c = Tt.var 4 2 in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Tt.support (Tt.xor a c));
  Alcotest.(check (list int)) "const support" [] (Tt.support (Tt.const_true 4))

let test_permute_roundtrip () =
  let f = Tt.or_ (Tt.and_ (Tt.var 3 0) (Tt.var 3 1)) (Tt.var 3 2) in
  let perm = [| 2; 0; 1 |] in
  let inv = [| 1; 2; 0 |] in
  Alcotest.check tt "permute then inverse" f (Tt.permute (Tt.permute f perm) inv)

let test_permute_semantics () =
  (* renaming var 0 -> 1 on (x0 & !x1) yields (x1 & !x0) *)
  let f = Tt.and_ (Tt.var 2 0) (Tt.not_ (Tt.var 2 1)) in
  let g = Tt.permute f [| 1; 0 |] in
  Alcotest.check tt "swap" (Tt.and_ (Tt.var 2 1) (Tt.not_ (Tt.var 2 0))) g

let test_minterms_roundtrip () =
  let f = Tt.of_minterms 4 [ 0; 3; 7; 12 ] in
  Alcotest.(check (list int)) "minterms" [ 0; 3; 7; 12 ] (Tt.minterms f);
  Alcotest.(check int) "count" 4 (Tt.count_ones f)

let qcheck_tt n =
  QCheck.map
    (fun w -> Tt.create n (Int64.of_int w))
    QCheck.(int_bound 0xFFFF)

let prop_demorgan =
  QCheck.Test.make ~name:"de morgan" ~count:200
    (QCheck.pair (qcheck_tt 4) (qcheck_tt 4))
    (fun (a, b) -> Tt.equal (Tt.not_ (Tt.and_ a b)) (Tt.or_ (Tt.not_ a) (Tt.not_ b)))

let prop_xor_self =
  QCheck.Test.make ~name:"xor self = 0" ~count:200 (qcheck_tt 4) (fun a ->
      Tt.is_const_false (Tt.xor a a))

let prop_cofactor_shannon =
  QCheck.Test.make ~name:"shannon expansion" ~count:200 (qcheck_tt 4) (fun f ->
      let x = Tt.var 4 1 in
      let expanded =
        Tt.or_
          (Tt.and_ x (Tt.cofactor 1 true f))
          (Tt.and_ (Tt.not_ x) (Tt.cofactor 1 false f))
      in
      Tt.equal f expanded)

let prop_permute_preserves_count =
  QCheck.Test.make ~name:"permute preserves minterm count" ~count:200
    (qcheck_tt 4) (fun f ->
      Tt.count_ones f = Tt.count_ones (Tt.permute f [| 3; 1; 0; 2 |]))

let suite =
  [
    ( "tt",
      [
        Alcotest.test_case "vars and consts" `Quick test_vars_and_consts;
        Alcotest.test_case "pointwise ops" `Quick test_ops_pointwise;
        Alcotest.test_case "eval array" `Quick test_eval_array;
        Alcotest.test_case "cofactor" `Quick test_cofactor;
        Alcotest.test_case "support" `Quick test_support;
        Alcotest.test_case "permute roundtrip" `Quick test_permute_roundtrip;
        Alcotest.test_case "permute semantics" `Quick test_permute_semantics;
        Alcotest.test_case "minterms roundtrip" `Quick test_minterms_roundtrip;
        QCheck_alcotest.to_alcotest prop_demorgan;
        QCheck_alcotest.to_alcotest prop_xor_self;
        QCheck_alcotest.to_alcotest prop_cofactor_shannon;
        QCheck_alcotest.to_alcotest prop_permute_preserves_count;
      ] );
  ]
