module Circuit = Netlist.Circuit
module Simplify = Netlist.Simplify
module Redundancy = Atpg.Redundancy
module Equiv = Atpg.Equiv
module Library = Gatelib.Library

let test_simplify_constants () =
  (* f = and2(a, const1) -> wire; g = or2(b, const1) -> const1 *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let one = Circuit.add_const c true in
  let f = Circuit.add_cell c ~name:"f" (Library.find lib "and2") [| a; one |] in
  let g = Circuit.add_cell c ~name:"g" (Library.find lib "or2") [| b; one |] in
  let h = Circuit.add_cell c ~name:"h" (Library.find lib "xor2") [| f; g |] in
  ignore (Circuit.add_po c ~name:"out" h);
  let n = Simplify.propagate_constants c in
  Alcotest.(check bool) "some rewrites" true (n >= 2);
  (match Circuit.validate c with Ok () -> () | Error e -> Alcotest.fail e);
  (* out = a xor 1 = !a *)
  List.iter
    (fun (va, vb) ->
      let outs = Sim.Engine.eval_single c [ va; vb ] in
      Alcotest.(check bool) "function" (not va) (List.assoc "out" outs))
    [ (false, false); (true, true); (false, true); (true, false) ]

let test_simplify_three_input () =
  (* aoi21(a, const1, c) = !(a + c) -> must re-match to nor2 *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let ci = Circuit.add_pi c ~name:"c" in
  let one = Circuit.add_const c true in
  let f = Circuit.add_cell c ~name:"f" (Library.find lib "aoi21") [| a; one; ci |] in
  ignore (Circuit.add_po c ~name:"out" f);
  ignore (Simplify.propagate_constants c);
  (match Circuit.validate c with Ok () -> () | Error e -> Alcotest.fail e);
  List.iter
    (fun (va, vc) ->
      let outs = Sim.Engine.eval_single c [ va; vc ] in
      Alcotest.(check bool) "nor" (not (va || vc)) (List.assoc "out" outs))
    [ (false, false); (true, false); (false, true); (true, true) ];
  (* the 3-input cell must be gone *)
  Circuit.iter_live c (fun id ->
      match Circuit.kind c id with
      | Circuit.Cell (cell, _) ->
        Alcotest.(check bool) "smaller cell" true (Gatelib.Cell.arity cell <= 2)
      | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ())

let test_collapse_buffers () =
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let buf = Circuit.add_cell c (Library.find lib "buf1") [| a |] in
  let inv = Circuit.add_cell c (Gatelib.Library.inverter lib) [| buf |] in
  ignore (Circuit.add_po c ~name:"out" inv);
  let n = Simplify.collapse_buffers c in
  Alcotest.(check int) "one buffer" 1 n;
  Alcotest.(check bool) "buffer dead" false (Circuit.is_live c buf)

let test_redundancy_removal () =
  let c, _, _, _ = Build.redundant_and () in
  let original = Circuit.clone c in
  let before = Circuit.gate_count c in
  let stats = Redundancy.remove c in
  (match Circuit.validate c with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "wires replaced" true (stats.Redundancy.wires_replaced >= 1);
  Alcotest.(check bool) "smaller" true (Circuit.gate_count c < before);
  Alcotest.(check bool) "equivalent" true (Equiv.check original c = Equiv.Equivalent)

let test_redundancy_on_irredundant () =
  (* a parity chain has no redundancy: nothing must change *)
  let c = Build.parity_chain 5 in
  let before = Circuit.gate_count c in
  let stats = Redundancy.remove c in
  Alcotest.(check int) "no wires" 0 stats.Redundancy.wires_replaced;
  Alcotest.(check int) "same size" before (Circuit.gate_count c)

let prop_redundancy_preserves_function =
  QCheck.Test.make ~name:"redundancy removal preserves function" ~count:10
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:25 in
      let original = Circuit.clone c in
      ignore (Redundancy.remove c);
      (match Circuit.validate c with Ok () -> () | Error e -> failwith e);
      Equiv.check original c = Equiv.Equivalent)

let prop_redundancy_never_grows =
  QCheck.Test.make ~name:"redundancy removal never grows area" ~count:10
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:25 in
      let before = Circuit.area c in
      ignore (Redundancy.remove c);
      Circuit.area c <= before +. 1e-9)

let suite =
  [
    ( "redundancy",
      [
        Alcotest.test_case "constant propagation" `Quick test_simplify_constants;
        Alcotest.test_case "3-input rematch" `Quick test_simplify_three_input;
        Alcotest.test_case "collapse buffers" `Quick test_collapse_buffers;
        Alcotest.test_case "removal on redundant circuit" `Quick test_redundancy_removal;
        Alcotest.test_case "no-op on parity" `Quick test_redundancy_on_irredundant;
        QCheck_alcotest.to_alcotest prop_redundancy_preserves_function;
        QCheck_alcotest.to_alcotest prop_redundancy_never_grows;
      ] );
  ]
