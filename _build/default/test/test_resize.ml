module Circuit = Netlist.Circuit
module Library = Gatelib.Library
module Cell = Gatelib.Cell
module Resize = Powder.Resize
module Timing = Sta.Timing

let test_lib2_sized_variants () =
  let lib = Library.lib2_sized in
  let base = Library.find lib "nand2" in
  let big = Library.find lib "nand2_2x" in
  let small = Library.find lib "nand2_h" in
  Alcotest.(check bool) "same function" true
    (Logic.Tt.equal base.Cell.func big.Cell.func
    && Logic.Tt.equal base.Cell.func small.Cell.func);
  Alcotest.(check bool) "2x drives harder" true
    (big.Cell.drive_res < base.Cell.drive_res);
  Alcotest.(check bool) "2x costs more cap" true
    (big.Cell.pin_caps.(0) > base.Cell.pin_caps.(0));
  Alcotest.(check bool) "h is lighter" true
    (small.Cell.pin_caps.(0) < base.Cell.pin_caps.(0))

let test_set_cell () =
  let lib = Library.lib2_sized in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let g = Circuit.add_cell c (Library.find lib "nand2") [| a; b |] in
  ignore (Circuit.add_po c ~name:"o" g);
  Circuit.set_cell c g (Library.find lib "nand2_2x");
  (match Circuit.validate c with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check string) "swapped" "nand2_2x" (Circuit.cell_of c g).Cell.name;
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Circuit.set_cell: arity mismatch") (fun () ->
      Circuit.set_cell c g (Library.inverter lib))

(* A power-mapped circuit is already minimum-size everywhere, so give
   the resizer genuine headroom by force-upsizing every instance. *)
let sized_circuit seed =
  let g = Circuits.Generators.multiplier ~width:4 in
  ignore seed;
  let lib = Library.lib2_sized in
  let c = Mapper.Techmap.map ~objective:Mapper.Techmap.Power lib g in
  List.iter
    (fun id ->
      let cell = Circuit.cell_of c id in
      match Library.find_opt lib (cell.Cell.name ^ "_2x") with
      | Some big -> Circuit.set_cell c id big
      | None -> (
        (* already a variant: swap _h for the base cell *)
        match String.index_opt cell.Cell.name '_' with
        | Some i ->
          let base = String.sub cell.Cell.name 0 i in
          (match Library.find_opt lib (base ^ "_2x") with
          | Some big -> Circuit.set_cell c id big
          | None -> ())
        | None -> ()))
    (Circuit.live_gates c);
  c

let test_resize_reduces_power () =
  let c = sized_circuit 1 in
  let report = Resize.optimize c in
  Alcotest.(check bool) "power reduced or equal" true
    (report.Resize.final_power <= report.Resize.initial_power +. 1e-9);
  Alcotest.(check bool) "did some work" true (report.Resize.resized > 0);
  (match Circuit.validate c with Ok () -> () | Error e -> Alcotest.fail e)

let test_resize_respects_delay () =
  let c = sized_circuit 2 in
  let report = Resize.optimize c in
  Alcotest.(check bool)
    (Printf.sprintf "delay %.3f <= initial %.3f" report.Resize.final_delay
       report.Resize.initial_delay)
    true
    (report.Resize.final_delay <= report.Resize.initial_delay +. 1e-6)

let test_resize_preserves_function () =
  let c = sized_circuit 3 in
  let original = Circuit.clone c in
  ignore (Resize.optimize c);
  Alcotest.(check bool) "equivalent" true
    (Atpg.Equiv.check original c = Atpg.Equiv.Equivalent)

let test_resize_noop_without_variants () =
  (* plain lib2 has single strengths: nothing to swap *)
  let spec = Option.get (Circuits.Suite.find "rd84") in
  let c = Circuits.Suite.mapped spec in
  let report = Resize.optimize c in
  Alcotest.(check int) "no swaps" 0 report.Resize.resized

let suite =
  [
    ( "resize",
      [
        Alcotest.test_case "sized library" `Quick test_lib2_sized_variants;
        Alcotest.test_case "set_cell" `Quick test_set_cell;
        Alcotest.test_case "reduces power" `Quick test_resize_reduces_power;
        Alcotest.test_case "respects delay" `Quick test_resize_respects_delay;
        Alcotest.test_case "preserves function" `Quick test_resize_preserves_function;
        Alcotest.test_case "no-op without variants" `Quick test_resize_noop_without_variants;
      ] );
  ]
