module Cube = Logic.Cube
module Sop = Logic.Sop
module Tt = Logic.Tt

let test_parse_print () =
  let c = Cube.of_string "1-0" in
  Alcotest.(check string) "roundtrip" "1-0" (Cube.to_string 3 c);
  Alcotest.(check (list (pair int bool)))
    "literals"
    [ (0, true); (2, false) ]
    (Cube.literals c)

let test_eval () =
  let c = Cube.of_string "1-0" in
  Alcotest.(check bool) "101 -> x0=1,x2=1 fails" false (Cube.eval c 0b101);
  Alcotest.(check bool) "001 ok" true (Cube.eval c 0b001);
  Alcotest.(check bool) "011 ok" true (Cube.eval c 0b011)

let test_contains () =
  let big = Cube.of_string "1--" and small = Cube.of_string "1-0" in
  Alcotest.(check bool) "big contains small" true (Cube.contains big small);
  Alcotest.(check bool) "small contains big" false (Cube.contains small big)

let test_merge () =
  let a = Cube.of_string "10-" and b = Cube.of_string "11-" in
  (match Cube.merge a b with
  | Some m -> Alcotest.(check string) "merged" "1--" (Cube.to_string 3 m)
  | None -> Alcotest.fail "expected merge");
  let c = Cube.of_string "01-" in
  Alcotest.(check bool) "no merge at distance 2" true (Cube.merge a c = None)

let test_sop_tt_roundtrip () =
  let sop = Sop.create 3 [ Cube.of_string "11-"; Cube.of_string "--1" ] in
  let f = Sop.to_tt sop in
  for m = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "minterm %d" m)
      (Sop.eval sop m) (Tt.eval_int f m)
  done;
  let back = Sop.of_tt f in
  Alcotest.(check bool) "of_tt equal" true (Tt.equal f (Sop.to_tt back))

let test_complement () =
  let sop = Sop.create 3 [ Cube.of_string "1-0"; Cube.of_string "01-" ] in
  let comp = Sop.complement_naive sop in
  Alcotest.(check bool)
    "complement tt" true
    (Tt.equal (Sop.to_tt comp) (Tt.not_ (Sop.to_tt sop)))

let qcheck_sop n =
  let cube =
    QCheck.map
      (fun (p, q) -> { Cube.pos = p land ((1 lsl n) - 1); neg = q land ((1 lsl n) - 1) })
      QCheck.(pair (int_bound 255) (int_bound 255))
  in
  QCheck.map (fun cs -> Sop.create n cs) QCheck.(list_of_size Gen.(0 -- 6) cube)

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimize preserves function" ~count:300 (qcheck_sop 4)
    (fun sop -> Tt.equal (Sop.to_tt sop) (Sop.to_tt (Sop.minimize sop)))

let prop_minimize_no_growth =
  QCheck.Test.make ~name:"minimize never grows" ~count:300 (qcheck_sop 4)
    (fun sop -> Sop.num_cubes (Sop.minimize sop) <= Sop.num_cubes sop)

let prop_complement_involution =
  QCheck.Test.make ~name:"complement is involutive on tt" ~count:100
    (qcheck_sop 4) (fun sop ->
      let c2 = Sop.complement_naive (Sop.complement_naive sop) in
      Tt.equal (Sop.to_tt sop) (Sop.to_tt c2))

let base_tests =
  [
        Alcotest.test_case "parse/print" `Quick test_parse_print;
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "contains" `Quick test_contains;
        Alcotest.test_case "merge" `Quick test_merge;
        Alcotest.test_case "sop/tt roundtrip" `Quick test_sop_tt_roundtrip;
        Alcotest.test_case "complement" `Quick test_complement;
        QCheck_alcotest.to_alcotest prop_minimize_preserves;
        QCheck_alcotest.to_alcotest prop_minimize_no_growth;
        QCheck_alcotest.to_alcotest prop_complement_involution;
  ]

(* ------------------------------------------------------------------ *)
(* Tautology / espresso                                                *)
(* ------------------------------------------------------------------ *)

let test_tautology_basics () =
  Alcotest.(check bool) "universe" true
    (Sop.tautology (Sop.const_true 3));
  Alcotest.(check bool) "empty" false (Sop.tautology (Sop.const_false 3));
  (* x + !x *)
  let t = Sop.create 2 [ Cube.of_string "1-"; Cube.of_string "0-" ] in
  Alcotest.(check bool) "x + !x" true (Sop.tautology t);
  let u = Sop.create 2 [ Cube.of_string "1-"; Cube.of_string "01" ] in
  Alcotest.(check bool) "x + !x y" false (Sop.tautology u)

let test_covers_cube () =
  let t = Sop.create 3 [ Cube.of_string "1--"; Cube.of_string "01-" ] in
  Alcotest.(check bool) "covers 11-" true (Sop.covers_cube t (Cube.of_string "11-"));
  (* the cover equals x0 + x1, so the whole of x1 is covered... *)
  Alcotest.(check bool) "covers -1-" true (Sop.covers_cube t (Cube.of_string "-1-"));
  (* ...but x2 alone is not *)
  Alcotest.(check bool) "covers --1 fails" false
    (Sop.covers_cube t (Cube.of_string "--1"));
  Alcotest.(check bool) "covers 01-" true (Sop.covers_cube t (Cube.of_string "01-"))

let test_espresso_classic () =
  (* xy + x!y + !xy  ->  x + y (2 cubes) *)
  let t =
    Sop.create 2 [ Cube.of_string "11"; Cube.of_string "10"; Cube.of_string "01" ]
  in
  let m = Sop.espresso t in
  Alcotest.(check int) "two cubes" 2 (Sop.num_cubes m);
  Alcotest.(check bool) "function kept" true
    (Tt.equal (Sop.to_tt t) (Sop.to_tt m))

let prop_tautology_matches_tt =
  QCheck.Test.make ~name:"tautology = tt check" ~count:300 (qcheck_sop 4)
    (fun sop -> Sop.tautology sop = Tt.is_const_true (Sop.to_tt sop))

let prop_espresso_preserves =
  QCheck.Test.make ~name:"espresso preserves function" ~count:300
    (qcheck_sop 4)
    (fun sop -> Tt.equal (Sop.to_tt sop) (Sop.to_tt (Sop.espresso sop)))

let prop_espresso_not_worse =
  QCheck.Test.make ~name:"espresso <= minimize cube count" ~count:300
    (qcheck_sop 4)
    (fun sop ->
      Sop.num_cubes (Sop.espresso sop) <= Sop.num_cubes (Sop.minimize sop))

let prop_covers_cube_matches_tt =
  QCheck.Test.make ~name:"covers_cube = tt containment" ~count:300
    QCheck.(pair (qcheck_sop 4) (pair (int_bound 15) (int_bound 15)))
    (fun (sop, (p, q)) ->
      let c = { Cube.pos = p land 0xF; neg = q land 0xF land lnot p } in
      let cube_tt = Cube.to_tt 4 c in
      Sop.covers_cube sop c
      = Tt.is_const_true (Tt.or_ (Sop.to_tt sop) (Tt.not_ cube_tt)))

let extra_tests =
  [
    Alcotest.test_case "tautology basics" `Quick test_tautology_basics;
    Alcotest.test_case "covers_cube" `Quick test_covers_cube;
    Alcotest.test_case "espresso classic" `Quick test_espresso_classic;
    QCheck_alcotest.to_alcotest prop_tautology_matches_tt;
    QCheck_alcotest.to_alcotest prop_espresso_preserves;
    QCheck_alcotest.to_alcotest prop_espresso_not_worse;
    QCheck_alcotest.to_alcotest prop_covers_cube_matches_tt;
  ]

let suite = [ ("cube-sop", base_tests @ extra_tests) ]
