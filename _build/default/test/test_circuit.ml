module Circuit = Netlist.Circuit
module Library = Gatelib.Library

let check_valid c =
  match Circuit.validate c with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid circuit: " ^ e)

let test_build_and_validate () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  check_valid c;
  Alcotest.(check int) "gates" 3 (Circuit.gate_count c);
  Alcotest.(check int) "pis" 3 (List.length (Circuit.pis c));
  Alcotest.(check int) "pos" 2 (List.length (Circuit.pos c))

let test_loads () =
  let c, a, b, _, d, _, _ = Build.fig2_a () in
  (* a drives: and2(e) pin (1.0) + xor2(d) pin (2.0) *)
  Alcotest.(check (float 1e-9)) "load a" 3.0 (Circuit.load_of c a);
  (* b drives two and2 pins *)
  Alcotest.(check (float 1e-9)) "load b" 2.0 (Circuit.load_of c b);
  (* d drives one and2 pin *)
  Alcotest.(check (float 1e-9)) "load d" 1.0 (Circuit.load_of c d)

let test_set_fanin () =
  let c, a, _, _, d, e, _ = Build.fig2_a () in
  Circuit.set_fanin c d 0 e;
  check_valid c;
  Alcotest.(check int) "a fanouts" 1 (Circuit.num_fanouts c a);
  Alcotest.(check int) "e fanouts" 2 (Circuit.num_fanouts c e);
  Alcotest.(check bool) "d fanin" true ((Circuit.fanins c d).(0) = e)

let test_replace_stem_and_sweep () =
  let c, ab, abc, out = Build.redundant_and () in
  (* replace the redundant or-output by ab directly *)
  Circuit.replace_stem c out ab;
  check_valid c;
  let killed = Circuit.sweep c in
  check_valid c;
  Alcotest.(check bool) "out killed" true (List.mem out killed);
  Alcotest.(check bool) "abc killed" true (List.mem abc killed);
  Alcotest.(check bool) "ab alive" true (Circuit.is_live c ab);
  Alcotest.(check int) "one gate left" 1 (Circuit.gate_count c)

let test_cycle_detection () =
  let c, _, _, _, d, _, f = Build.fig2_a () in
  (* connecting f into d's input would create a cycle *)
  Alcotest.(check bool) "would cycle" true (Circuit.would_cycle_pin c d 0 f);
  Alcotest.check_raises "set_fanin rejects"
    (Invalid_argument "Circuit.set_fanin: would create a cycle") (fun () ->
      Circuit.set_fanin c d 0 f)

let test_tfo_tfi () =
  let c, a, _, _, d, e, f = Build.fig2_a () in
  let tfo = Circuit.tfo c a in
  Alcotest.(check bool) "d in tfo(a)" true tfo.(d);
  Alcotest.(check bool) "e in tfo(a)" true tfo.(e);
  Alcotest.(check bool) "f in tfo(a)" true tfo.(f);
  Alcotest.(check bool) "a not in tfo(a)" false tfo.(a);
  let tfi = Circuit.tfi c f in
  Alcotest.(check bool) "a in tfi(f)" true tfi.(a);
  Alcotest.(check bool) "e not in tfi(f)" false tfi.(e)

let test_dominators () =
  let c, ab, abc, out = Build.redundant_and () in
  (* abc's only fanout is out: Dom(out) contains abc and nc but not ab
     (ab also feeds out directly AND abc, both inside... ab's fanouts
     are abc and out, both in Dom(out), so ab IS dominated too). *)
  let dom = Circuit.dominated_region c out in
  Alcotest.(check bool) "out in dom" true dom.(out);
  Alcotest.(check bool) "abc in dom" true dom.(abc);
  Alcotest.(check bool) "ab in dom" true dom.(ab);
  (* Dom(abc): just abc and nc; ab escapes through its direct edge to out *)
  let dom_abc = Circuit.dominated_region c abc in
  Alcotest.(check bool) "abc in dom(abc)" true dom_abc.(abc);
  Alcotest.(check bool) "ab not in dom(abc)" false dom_abc.(ab);
  (match Circuit.find_by_name c "nc" with
  | Some nc -> Alcotest.(check bool) "nc in dom(abc)" true dom_abc.(nc)
  | None -> Alcotest.fail "nc not found")

let test_inputs_of_region () =
  let c, ab, abc, _ = Build.redundant_and () in
  let dom_abc = Circuit.dominated_region c abc in
  let ins = Circuit.inputs_of_region c dom_abc in
  (* ab feeds abc from outside (it escapes through its direct edge to
     the or-gate); pi "c" only feeds nc, so it lies INSIDE the region
     and is not one of its inputs *)
  Alcotest.(check bool) "ab is an input" true (List.mem ab ins);
  (match Circuit.find_by_name c "c" with
  | Some ci ->
    Alcotest.(check bool) "pi c dominated" true dom_abc.(ci);
    Alcotest.(check bool) "pi c not an input" false (List.mem ci ins)
  | None -> Alcotest.fail "pi c not found")

let test_topo_order () =
  let c = Build.random_circuit ~seed:7 ~n_pis:8 ~n_gates:40 in
  check_valid c;
  let order = Circuit.topo_order c in
  let pos_of = Array.make (Circuit.num_nodes c) (-1) in
  Array.iteri (fun k id -> pos_of.(id) <- k) order;
  Array.iter
    (fun id ->
      Array.iter
        (fun f ->
          Alcotest.(check bool) "fanin before node" true (pos_of.(f) < pos_of.(id)))
        (Circuit.fanins c id))
    order

let test_clone_independent () =
  let c, _, _, _, d, e, _ = Build.fig2_a () in
  let c2 = Circuit.clone c in
  Circuit.set_fanin c2 d 0 e;
  (* original untouched *)
  Alcotest.(check bool) "orig fanin" true ((Circuit.fanins c d).(0) <> e);
  check_valid c;
  check_valid c2

let test_area () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let and2 = Library.find Build.lib "and2" and xor2 = Library.find Build.lib "xor2" in
  Alcotest.(check (float 1e-6)) "area"
    ((2.0 *. and2.Gatelib.Cell.area) +. xor2.Gatelib.Cell.area)
    (Circuit.area c)

let prop_random_circuits_valid =
  QCheck.Test.make ~name:"random circuits validate" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:25 in
      match Circuit.validate c with Ok () -> true | Error _ -> false)

let suite =
  [
    ( "circuit",
      [
        Alcotest.test_case "build and validate" `Quick test_build_and_validate;
        Alcotest.test_case "loads" `Quick test_loads;
        Alcotest.test_case "set_fanin" `Quick test_set_fanin;
        Alcotest.test_case "replace_stem and sweep" `Quick test_replace_stem_and_sweep;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        Alcotest.test_case "tfo/tfi" `Quick test_tfo_tfi;
        Alcotest.test_case "dominated region" `Quick test_dominators;
        Alcotest.test_case "inputs of region" `Quick test_inputs_of_region;
        Alcotest.test_case "topo order" `Quick test_topo_order;
        Alcotest.test_case "clone independence" `Quick test_clone_independent;
        Alcotest.test_case "area" `Quick test_area;
        QCheck_alcotest.to_alcotest prop_random_circuits_valid;
      ] );
  ]

(* appended: version counter / topo cache coherence *)
let test_topo_cache_invalidation () =
  let c, _, _, _, d, e, _ = Build.fig2_a () in
  let o1 = Circuit.topo_order c in
  let o1' = Circuit.topo_order c in
  Alcotest.(check bool) "cached physical" true (o1 == o1');
  Circuit.set_fanin c d 0 e;
  let o2 = Circuit.topo_order c in
  Alcotest.(check bool) "invalidated" true (not (o1 == o2));
  (* still a valid order *)
  let pos_of = Array.make (Circuit.num_nodes c) (-1) in
  Array.iteri (fun k id -> pos_of.(id) <- k) o2;
  Array.iter
    (fun id ->
      Array.iter
        (fun f -> Alcotest.(check bool) "order" true (pos_of.(f) < pos_of.(id)))
        (Circuit.fanins c id))
    o2

let suite =
  match suite with
  | [ (name, tests) ] ->
    [ (name,
       tests
       @ [ Alcotest.test_case "topo cache invalidation" `Quick
             test_topo_cache_invalidation ]) ]
  | other -> other
