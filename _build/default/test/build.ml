(* Shared circuit builders for the test suite. *)

module Circuit = Netlist.Circuit
module Library = Gatelib.Library

let lib = Library.lib2

let cell name = Library.find lib name

(* The paper's Figure 2 topology (circuit A):
     e = a AND b        (kept output)
     d = a EXOR c
     f = d AND b        (output)
   The IS2 substitution reconnects the EXOR input from [a] to [e],
   turning d into g = (a*b) xor c without changing f = g*b. *)
let fig2_a () =
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let ci = Circuit.add_pi c ~name:"c" in
  let e = Circuit.add_cell c ~name:"e" (cell "and2") [| a; b |] in
  let d = Circuit.add_cell c ~name:"d" (cell "xor2") [| a; ci |] in
  let f = Circuit.add_cell c ~name:"f" (cell "and2") [| d; b |] in
  let _ = Circuit.add_po c ~name:"out_f" f in
  let _ = Circuit.add_po c ~name:"out_e" e in
  (c, a, b, ci, d, e, f)

let fig2_b () =
  let c, a, _, _, d, e, _ = fig2_a () in
  (* reconnect pin 0 of the EXOR (currently a) to e *)
  ignore a;
  Circuit.set_fanin c d 0 e;
  c

(* n-input XOR chain with a PO, pi names x0.. *)
let parity_chain n =
  let c = Circuit.create lib in
  let pis = List.init n (fun i -> Circuit.add_pi c ~name:(Printf.sprintf "x%d" i)) in
  let out =
    match pis with
    | [] -> Circuit.add_const c false
    | first :: rest ->
      List.fold_left
        (fun acc pi -> Circuit.add_cell c (cell "xor2") [| acc; pi |])
        first rest
  in
  let _ = Circuit.add_po c ~name:"parity" out in
  c

(* A circuit with an easy redundancy: out = (a & b) | (a & b & c') has
   the same function as a & b. *)
let redundant_and () =
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let ci = Circuit.add_pi c ~name:"c" in
  let ab = Circuit.add_cell c ~name:"ab" (cell "and2") [| a; b |] in
  let nc = Circuit.add_cell c ~name:"nc" (cell "inv1") [| ci |] in
  let abc = Circuit.add_cell c ~name:"abc" (cell "and2") [| ab; nc |] in
  let out = Circuit.add_cell c ~name:"o" (cell "or2") [| ab; abc |] in
  let _ = Circuit.add_po c ~name:"out" out in
  (c, ab, abc, out)

(* Random mapped circuit: n_pis inputs, n_gates random 2-input gates
   drawing fanins from previously created signals.  Every sink-less
   signal becomes a PO.  Deterministic in [seed]. *)
let random_circuit ~seed ~n_pis ~n_gates =
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let gates2 =
    List.filter
      (fun (c : Gatelib.Cell.t) -> Gatelib.Cell.arity c = 2)
      (Library.cells lib)
  in
  let gates2 = Array.of_list gates2 in
  let c = Circuit.create lib in
  let signals = ref [] in
  for i = 0 to n_pis - 1 do
    signals := Circuit.add_pi c ~name:(Printf.sprintf "x%d" i) :: !signals
  done;
  let pick () =
    let arr = Array.of_list !signals in
    arr.(Int64.to_int (Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int)
                         (Int64.of_int (Array.length arr))))
  in
  for _ = 1 to n_gates do
    let g = gates2.(Int64.to_int (Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int)
                                    (Int64.of_int (Array.length gates2)))) in
    let f0 = pick () in
    let f1 = pick () in
    signals := Circuit.add_cell c g [| f0; f1 |] :: !signals
  done;
  let n_po = ref 0 in
  List.iter
    (fun s ->
      if Circuit.num_fanouts c s = 0 then begin
        incr n_po;
        ignore (Circuit.add_po c ~name:(Printf.sprintf "po%d" !n_po) s)
      end)
    !signals;
  c
