(* End-to-end flow tests: SOP/AIG -> technology mapping -> POWDER
   optimization -> equivalence + constraint verification. *)

module Circuit = Netlist.Circuit
module Suite = Circuits.Suite
module Optimizer = Powder.Optimizer
module Equiv = Atpg.Equiv
module Timing = Sta.Timing

let small_cfg = { Optimizer.default_config with words = 8 }

let run_flow ?(config = small_cfg) name =
  match Suite.find name with
  | None -> Alcotest.fail (name ^ " missing from suite")
  | Some spec ->
    let circ = Suite.mapped spec in
    let original = Circuit.clone circ in
    let report = Optimizer.optimize ~config circ in
    (original, circ, report)

let check_equiv name original optimized =
  match Equiv.check ~exhaustive_limit:16 original optimized with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail (name ^ ": functions differ!")
  | Equiv.Unknown ->
    (* wide circuits: fall back to a heavy random simulation cross-check *)
    let words = 64 in
    let e1 = Sim.Engine.create original ~words in
    let e2 = Sim.Engine.create optimized ~words in
    let rng = Sim.Rng.create 99L in
    let values = Hashtbl.create 64 in
    List.iter
      (fun pi ->
        Hashtbl.add values (Circuit.name original pi)
          (Array.init words (fun _ -> Sim.Rng.next rng)))
      (Circuit.pis original);
    List.iter
      (fun pi ->
        Sim.Engine.set_value e1 pi (Hashtbl.find values (Circuit.name original pi)))
      (Circuit.pis original);
    List.iter
      (fun pi ->
        Sim.Engine.set_value e2 pi (Hashtbl.find values (Circuit.name optimized pi)))
      (Circuit.pis optimized);
    Sim.Engine.resim_all e1;
    Sim.Engine.resim_all e2;
    Alcotest.(check bool)
      (name ^ ": random cross-check")
      true
      (Sim.Engine.equivalent_on_patterns e1 e2)

let test_flow_small_exact () =
  List.iter
    (fun name ->
      let original, optimized, report = run_flow name in
      check_equiv name original optimized;
      Alcotest.(check bool)
        (name ^ " power never increases")
        true
        (report.Optimizer.final_power <= report.Optimizer.initial_power +. 1e-9))
    [ "rd84"; "t481"; "9sym"; "alu2" ]

let test_flow_wide () =
  let original, optimized, report = run_flow "comp" in
  check_equiv "comp" original optimized;
  Alcotest.(check bool) "no failure" true (report.Optimizer.rounds >= 1)

let test_flow_delay_constrained () =
  List.iter
    (fun name ->
      let config = { small_cfg with Optimizer.delay = Optimizer.Keep_initial } in
      let original, optimized, report = run_flow ~config name in
      check_equiv name original optimized;
      match report.Optimizer.delay_constraint with
      | Some limit ->
        Alcotest.(check bool)
          (name ^ " delay within constraint")
          true
          (report.Optimizer.final_delay <= limit +. 1e-6)
      | None -> Alcotest.fail "expected constraint")
    [ "rd84"; "alu2" ]

let test_looser_constraint_never_worse () =
  (* the Figure 6 monotonicity: more delay headroom cannot reduce the
     achievable power savings below the tight-constraint result by more
     than noise *)
  let run percent =
    match Suite.find "rd84" with
    | None -> Alcotest.fail "rd84 missing"
    | Some spec ->
      let circ = Suite.mapped spec in
      let config =
        { small_cfg with Optimizer.delay = Optimizer.Ratio (percent /. 100.0) }
      in
      (Optimizer.optimize ~config circ).Optimizer.final_power
  in
  let tight = run 0.0 and loose = run 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "loose %.3f <= tight %.3f * 1.05" loose tight)
    true (loose <= (tight *. 1.05) +. 1e-9)

let test_optimizer_report_consistency () =
  let _, optimized, report = run_flow "f51m" in
  (* the report's final numbers match the circuit state *)
  Alcotest.(check (float 1e-6)) "area" (Circuit.area optimized)
    report.Optimizer.final_area;
  Alcotest.(check (float 1e-6)) "delay"
    (Timing.circuit_delay (Timing.analyze optimized))
    report.Optimizer.final_delay;
  (* per-class accounting sums to the total power gain *)
  let class_sum =
    List.fold_left
      (fun acc (_, st) -> acc +. st.Optimizer.power_gain)
      0.0 report.Optimizer.by_class
  in
  Alcotest.(check (float 1e-6))
    "class power sums"
    (report.Optimizer.initial_power -. report.Optimizer.final_power)
    class_sum;
  let class_count =
    List.fold_left (fun acc (_, st) -> acc + st.Optimizer.accepted) 0
      report.Optimizer.by_class
  in
  Alcotest.(check int) "class counts sum" report.Optimizer.substitutions class_count

let test_tradeoff_sweep_shape () =
  match Suite.find "rd84" with
  | None -> Alcotest.fail "rd84 missing"
  | Some spec ->
    let builders = [ (fun () -> Suite.mapped spec) ] in
    let points =
      Powder.Tradeoff.sweep ~config:small_cfg ~percents:[ 0.0; 50.0 ] builders
    in
    Alcotest.(check int) "two points" 2 (List.length points);
    List.iter
      (fun p ->
        Alcotest.(check bool) "relative power <= 1" true
          (p.Powder.Tradeoff.relative_power <= 1.0 +. 1e-9))
      points

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "flow on exact circuits" `Slow test_flow_small_exact;
        Alcotest.test_case "flow on wide circuit" `Slow test_flow_wide;
        Alcotest.test_case "delay-constrained flow" `Slow test_flow_delay_constrained;
        Alcotest.test_case "looser constraint not worse" `Slow test_looser_constraint_never_worse;
        Alcotest.test_case "report consistency" `Slow test_optimizer_report_consistency;
        Alcotest.test_case "tradeoff sweep" `Slow test_tradeoff_sweep_shape;
      ] );
  ]
