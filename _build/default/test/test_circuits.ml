module G = Aig.Graph
module Gen = Circuits.Generators
module Suite = Circuits.Suite
module Circuit = Netlist.Circuit

let eval1 g inputs = List.assoc "f" (G.eval g inputs)

let test_comparator () =
  let g = Gen.comparator ~width:4 in
  let check a b =
    let inputs = Array.init 8 (fun i ->
        if i < 4 then a land (1 lsl i) <> 0 else b land (1 lsl (i - 4)) <> 0)
    in
    let outs = G.eval g inputs in
    Alcotest.(check bool) (Printf.sprintf "lt %d %d" a b) (a < b) (List.assoc "lt" outs);
    Alcotest.(check bool) (Printf.sprintf "eq %d %d" a b) (a = b) (List.assoc "eq" outs);
    Alcotest.(check bool) (Printf.sprintf "gt %d %d" a b) (a > b) (List.assoc "gt" outs)
  in
  List.iter (fun (a, b) -> check a b) [ (0, 0); (3, 7); (9, 2); (15, 15); (8, 7) ]

let test_rd_counts () =
  let g = Gen.rd ~inputs:8 in
  for v = 0 to 255 do
    let inputs = Array.init 8 (fun i -> v land (1 lsl i) <> 0) in
    let outs = G.eval g inputs in
    let count =
      List.fold_left
        (fun acc bit ->
          acc + (if List.assoc (Printf.sprintf "cnt_%d" bit) outs then 1 lsl bit else 0))
        0 [ 0; 1; 2; 3 ]
    in
    let expected =
      let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
      pop v 0
    in
    Alcotest.(check int) (Printf.sprintf "weight of %d" v) expected count
  done

let test_sym9_variants_agree () =
  let g1 = Gen.sym9 () in
  let g2 = Gen.sym9_twolevel () in
  let g3 = Gen.sym9_chain () in
  for v = 0 to 511 do
    let inputs = Array.init 9 (fun i -> v land (1 lsl i) <> 0) in
    let ones =
      let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
      pop v 0
    in
    let expected = ones >= 3 && ones <= 6 in
    Alcotest.(check bool) "sym9" expected (eval1 g1 inputs);
    Alcotest.(check bool) "sym9 two-level" expected (eval1 g2 inputs);
    Alcotest.(check bool) "sym9 chain" expected (eval1 g3 inputs)
  done

let test_multiplier () =
  let g = Gen.multiplier ~width:4 in
  List.iter
    (fun (a, b) ->
      let inputs = Array.init 8 (fun i ->
          if i < 4 then a land (1 lsl i) <> 0 else b land (1 lsl (i - 4)) <> 0)
      in
      let outs = G.eval g inputs in
      let p =
        List.fold_left
          (fun acc bit ->
            acc + (if List.assoc (Printf.sprintf "p_%d" bit) outs then 1 lsl bit else 0))
          0 (List.init 8 (fun i -> i))
      in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) p)
    [ (0, 0); (3, 5); (15, 15); (7, 9); (12, 11) ]

let test_alu181_add_mode () =
  (* s = 1001, m = 0, cn = 1 is the classic A plus B mode *)
  let g = Gen.alu181 () in
  List.iter
    (fun (a, b) ->
      let inputs = Array.make 14 false in
      for i = 0 to 3 do
        inputs.(i) <- a land (1 lsl i) <> 0;
        inputs.(4 + i) <- b land (1 lsl i) <> 0
      done;
      (* pi order: a0..a3 b0..b3 s0..s3 m cn *)
      inputs.(8) <- true;
      inputs.(11) <- true;
      inputs.(12) <- false;
      inputs.(13) <- true (* cn = 1 encodes carry-in 0 in active-high 181 *);
      let outs = G.eval g inputs in
      let f =
        List.fold_left
          (fun acc bit ->
            acc + (if List.assoc (Printf.sprintf "f_%d" bit) outs then 1 lsl bit else 0))
          0 [ 0; 1; 2; 3 ]
      in
      (* our reformulated 181: verify against its own spec — addition
         with the given s decodes to a plus b when cn=1 *)
      ignore f)
    [ (3, 4) ];
  (* structural sanity only: the ALU has 14 inputs and 8 outputs *)
  Alcotest.(check int) "pis" 14 (List.length (G.pis g));
  Alcotest.(check int) "pos" 8 (List.length (G.pos g))

let test_hamming_corrects_single_error () =
  let g = Gen.hamming () in
  (* compute the check bits for a data word using the same parity rule *)
  let checks_for data =
    Array.init 5 (fun j ->
        List.fold_left
          (fun acc i -> if (i + 3) land (1 lsl j) <> 0 then acc <> (data land (1 lsl i) <> 0) else acc)
          false
          (List.init 16 (fun i -> i)))
  in
  let run data flip_bit =
    let checks = checks_for data in
    let inputs = Array.init 21 (fun i ->
        if i < 16 then
          let v = data land (1 lsl i) <> 0 in
          if flip_bit = Some i then not v else v
        else checks.(i - 16))
    in
    let outs = G.eval g inputs in
    List.fold_left
      (fun acc bit ->
        acc + (if List.assoc (Printf.sprintf "q_%d" bit) outs then 1 lsl bit else 0))
      0 (List.init 16 (fun i -> i))
  in
  List.iter
    (fun data ->
      Alcotest.(check int) "no error" data (run data None);
      Alcotest.(check int) "bit 0 corrected" data (run data (Some 0));
      Alcotest.(check int) "bit 9 corrected" data (run data (Some 9)))
    [ 0; 0xFFFF; 0x1234; 0xBEEF land 0xFFFF ]

let test_rotator () =
  let g = Gen.rotator ~width:8 in
  List.iter
    (fun (v, amt) ->
      let inputs = Array.init 11 (fun i ->
          if i < 8 then v land (1 lsl i) <> 0 else amt land (1 lsl (i - 8)) <> 0)
      in
      let outs = G.eval g inputs in
      let r =
        List.fold_left
          (fun acc bit ->
            acc + (if List.assoc (Printf.sprintf "r_%d" bit) outs then 1 lsl bit else 0))
          0 (List.init 8 (fun i -> i))
      in
      let expected = ((v lsl amt) lor (v lsr (8 - amt))) land 0xFF in
      Alcotest.(check int) (Printf.sprintf "rot %x by %d" v amt) expected r)
    [ (0x01, 1); (0x80, 1); (0xA5, 3); (0xFF, 7); (0x3C, 0) ]

let test_suite_all_build_and_map () =
  List.iter
    (fun spec ->
      let circ = Suite.mapped spec in
      (match Circuit.validate circ with
      | Ok () -> ()
      | Error e -> Alcotest.fail (spec.Suite.name ^ ": " ^ e));
      Alcotest.(check bool)
        (spec.Suite.name ^ " nonempty")
        true
        (Circuit.gate_count circ > 0))
    Suite.all

let test_suite_deterministic () =
  match Suite.find "spla" with
  | None -> Alcotest.fail "spla missing"
  | Some spec ->
    let c1 = Suite.mapped spec and c2 = Suite.mapped spec in
    Alcotest.(check int) "same gates" (Circuit.gate_count c1) (Circuit.gate_count c2);
    Alcotest.(check (float 1e-9)) "same area" (Circuit.area c1) (Circuit.area c2)

let test_fig6_names_exist () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true (Suite.find name <> None))
    Suite.fig6_names;
  Alcotest.(check int) "18 circuits" 18 (List.length Suite.fig6_names)

let suite =
  [
    ( "circuits",
      [
        Alcotest.test_case "comparator" `Quick test_comparator;
        Alcotest.test_case "rd weight" `Quick test_rd_counts;
        Alcotest.test_case "sym9 variants agree" `Quick test_sym9_variants_agree;
        Alcotest.test_case "multiplier" `Quick test_multiplier;
        Alcotest.test_case "alu181 shape" `Quick test_alu181_add_mode;
        Alcotest.test_case "hamming corrects" `Quick test_hamming_corrects_single_error;
        Alcotest.test_case "rotator" `Quick test_rotator;
        Alcotest.test_case "suite builds and maps" `Slow test_suite_all_build_and_map;
        Alcotest.test_case "suite deterministic" `Quick test_suite_deterministic;
        Alcotest.test_case "fig6 names" `Quick test_fig6_names_exist;
      ] );
  ]
