module Tt = Logic.Tt
module Cell = Gatelib.Cell
module Library = Gatelib.Library

let test_lib2_sanity () =
  let lib = Library.lib2 in
  let inv = Library.inverter lib in
  Alcotest.(check string) "inverter" "inv1" inv.Cell.name;
  Alcotest.(check bool) "has nand2" true (Library.mem lib "nand2");
  Alcotest.(check bool) "has xor2" true (Library.mem lib "xor2");
  let xor2 = Library.find lib "xor2" in
  Alcotest.(check (float 1e-9)) "xor pin cap" 2.0 xor2.Cell.pin_caps.(0);
  let nand2 = Library.find lib "nand2" in
  Alcotest.(check (float 1e-9)) "nand pin cap" 1.0 nand2.Cell.pin_caps.(0)

let test_cell_eval () =
  let lib = Library.lib2 in
  let aoi21 = Library.find lib "aoi21" in
  (* aoi21 = !(ab + c) *)
  Alcotest.(check bool) "110 -> 0" false (Cell.eval aoi21 [| true; true; false |]);
  Alcotest.(check bool) "001 -> 0" false (Cell.eval aoi21 [| false; false; true |]);
  Alcotest.(check bool) "100 -> 1" true (Cell.eval aoi21 [| true; false; false |])

let test_two_input_cells () =
  let cells = Library.two_input_cells Library.lib2 in
  let names = List.map (fun (c : Cell.t) -> c.Cell.name) cells in
  Alcotest.(check bool) "xor2 present" true (List.mem "xor2" names);
  Alcotest.(check bool) "nand2 present" true (List.mem "nand2" names);
  Alcotest.(check bool) "inv absent" false (List.mem "inv1" names)

let test_match_tt_direct () =
  let lib = Library.lib2 in
  let f = Tt.and_ (Tt.var 2 0) (Tt.var 2 1) in
  match Library.match_tt_best lib f with
  | Some (c, _) -> Alcotest.(check string) "and2" "and2" c.Cell.name
  | None -> Alcotest.fail "expected a match"

let test_match_tt_permuted () =
  let lib = Library.lib2 in
  (* aoi21 with pins permuted: !(c + a*b) where our signal order is
     (c, a, b): f(s0,s1,s2) = !(s1*s2 + s0) *)
  let f =
    Tt.not_ (Tt.or_ (Tt.and_ (Tt.var 3 1) (Tt.var 3 2)) (Tt.var 3 0))
  in
  match Library.match_tt_best lib f with
  | None -> Alcotest.fail "expected a match"
  | Some (c, perm) ->
    Alcotest.(check string) "cell" "aoi21" c.Cell.name;
    (* verify the permutation really realizes f: signal i feeds pin
       perm.(i); evaluate both on all minterms *)
    for m = 0 to 7 do
      let sig_val i = m land (1 lsl i) <> 0 in
      let pins = Array.make 3 false in
      Array.iteri (fun i p -> pins.(p) <- sig_val i) perm;
      Alcotest.(check bool)
        (Printf.sprintf "minterm %d" m)
        (Tt.eval_int f m) (Cell.eval c pins)
    done

let test_match_tt_all_sorted () =
  let lib = Library.lib2 in
  let f = Tt.not_ (Tt.and_ (Tt.var 2 0) (Tt.var 2 1)) in
  match Library.match_tt lib f with
  | [] -> Alcotest.fail "expected matches"
  | (first, _) :: _ ->
    Alcotest.(check string) "cheapest first" "nand2" first.Cell.name

let test_no_match () =
  let lib = Library.minimal in
  (* 3-input majority is not in the minimal library *)
  let a = Tt.var 3 0 and b = Tt.var 3 1 and c = Tt.var 3 2 in
  let maj = Tt.or_ (Tt.or_ (Tt.and_ a b) (Tt.and_ b c)) (Tt.and_ a c) in
  Alcotest.(check bool) "no match" true (Library.match_tt_best lib maj = None)

let test_duplicate_name_rejected () =
  let inv = Library.inverter Library.minimal in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Library.of_cells: duplicate cell inv")
    (fun () -> ignore (Library.of_cells [ inv; inv ]))

let prop_match_is_sound =
  (* any matched (cell, perm) must realize the function *)
  let gen =
    QCheck.map (fun w -> Tt.create 2 (Int64.of_int w)) QCheck.(int_bound 15)
  in
  QCheck.Test.make ~name:"match_tt soundness (2 vars)" ~count:64 gen (fun f ->
      List.for_all
        (fun ((c : Cell.t), perm) ->
          let ok = ref true in
          for m = 0 to 3 do
            let pins = Array.make 2 false in
            Array.iteri (fun i p -> pins.(p) <- m land (1 lsl i) <> 0) perm;
            if Cell.eval c pins <> Tt.eval_int f m then ok := false
          done;
          !ok)
        (Library.match_tt Library.lib2 f))

let suite_base =
  [
        Alcotest.test_case "lib2 sanity" `Quick test_lib2_sanity;
        Alcotest.test_case "cell eval" `Quick test_cell_eval;
        Alcotest.test_case "two-input cells" `Quick test_two_input_cells;
        Alcotest.test_case "match direct" `Quick test_match_tt_direct;
        Alcotest.test_case "match permuted" `Quick test_match_tt_permuted;
        Alcotest.test_case "match sorted" `Quick test_match_tt_all_sorted;
        Alcotest.test_case "no match" `Quick test_no_match;
        Alcotest.test_case "duplicate rejected" `Quick test_duplicate_name_rejected;
        QCheck_alcotest.to_alcotest prop_match_is_sound;
  ]

(* ------------------------------------------------------------------ *)
(* genlib parser                                                       *)
(* ------------------------------------------------------------------ *)

module Genlib = Gatelib.Genlib

let sample_genlib =
  {|# a tiny library
GATE inv 928 O=!a;  PIN * INV 1.0 999 0.9 0.3 0.9 0.3
GATE nand2 1392 O=!(a*b);  PIN * INV 1.0 999 1.0 0.2 1.0 0.2
GATE aoi21 1856 O=!(a*b+c);
  PIN a INV 1.1 999 1.2 0.4 1.0 0.2
  PIN b INV 1.1 999 1.2 0.4 1.0 0.2
  PIN c INV 1.3 999 1.2 0.4 1.0 0.2
GATE zero 0 O=CONST0;
GATE weird 100 O=a'*b + a b';  PIN * NONINV 1.0 999 1.0 0.1 1.0 0.1
|}

let test_genlib_parse () =
  match Genlib.parse sample_genlib with
  | Error e -> Alcotest.fail e
  | Ok lib ->
    Alcotest.(check int) "cells" 5 (List.length (Library.cells lib));
    let inv = Library.find lib "inv" in
    Alcotest.(check bool) "inv func" true
      (Tt.equal inv.Cell.func (Tt.not_ (Tt.var 1 0)));
    Alcotest.(check (float 1e-9)) "inv tau" 0.9 inv.Cell.tau;
    Alcotest.(check (float 1e-9)) "inv drive" 0.3 inv.Cell.drive_res;
    let aoi = Library.find lib "aoi21" in
    Alcotest.(check int) "aoi arity" 3 (Cell.arity aoi);
    Alcotest.(check (float 1e-9)) "aoi pin c cap" 1.3 aoi.Cell.pin_caps.(2);
    (* weird uses postfix ' and juxtaposition: a'b + !ab' = a xor b *)
    let weird = Library.find lib "weird" in
    Alcotest.(check bool) "weird = xor" true
      (Tt.equal weird.Cell.func (Tt.xor (Tt.var 2 0) (Tt.var 2 1)))

let test_genlib_precedence () =
  let text = "GATE g 1 O=a*b+c;  PIN * INV 1 999 1 0.1 1 0.1\n" in
  match Genlib.parse text with
  | Error e -> Alcotest.fail e
  | Ok lib ->
    let g = Library.find lib "g" in
    let expected =
      Tt.or_ (Tt.and_ (Tt.var 3 0) (Tt.var 3 1)) (Tt.var 3 2)
    in
    Alcotest.(check bool) "a*b+c" true (Tt.equal g.Cell.func expected)

let test_genlib_errors () =
  Alcotest.(check bool) "latch rejected" true
    (Result.is_error (Genlib.parse "LATCH l 1 O=a;"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Genlib.parse "GATE g 1 O=a &&& b;"));
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Genlib.parse ""))

let test_genlib_roundtrip () =
  (* print lib2 and re-parse: every cell must come back with the same
     function up to pin permutation, same area *)
  let text = Genlib.to_genlib Library.lib2 in
  match Genlib.parse text with
  | Error e -> Alcotest.fail e
  | Ok lib2' ->
    List.iter
      (fun (c : Cell.t) ->
        let c' = Library.find lib2' c.Cell.name in
        Alcotest.(check (float 1e-9)) (c.Cell.name ^ " area") c.Cell.area c'.Cell.area;
        (* same function modulo input permutation *)
        let tiny = Library.of_cells [ c' ] in
        Alcotest.(check bool)
          (c.Cell.name ^ " function")
          true
          (Library.match_tt tiny c.Cell.func <> []))
      (Library.cells Library.lib2)

let genlib_tests =
  [
    Alcotest.test_case "genlib parse" `Quick test_genlib_parse;
    Alcotest.test_case "genlib precedence" `Quick test_genlib_precedence;
    Alcotest.test_case "genlib errors" `Quick test_genlib_errors;
    Alcotest.test_case "genlib roundtrip lib2" `Quick test_genlib_roundtrip;
  ]

let suite = [ ("gatelib", suite_base @ genlib_tests) ]
