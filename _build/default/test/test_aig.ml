module G = Aig.Graph
module Network = Aig.Network
module Sop = Logic.Sop
module Cube = Logic.Cube

let test_const_folding () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  Alcotest.(check int) "a & 0" G.lit_false (G.and_ g a G.lit_false);
  Alcotest.(check int) "a & 1" a (G.and_ g a G.lit_true);
  Alcotest.(check int) "a & a" a (G.and_ g a a);
  Alcotest.(check int) "a & !a" G.lit_false (G.and_ g a (G.compl_ a))

let test_strashing () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  let b = G.add_pi g "b" in
  let x1 = G.and_ g a b in
  let x2 = G.and_ g b a in
  Alcotest.(check int) "commutative strash" x1 x2;
  Alcotest.(check int) "one and node" 1 (G.num_ands g)

let test_eval () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  let b = G.add_pi g "b" in
  let c = G.add_pi g "c" in
  G.add_po g "f" (G.or_ g (G.and_ g a b) (G.compl_ c));
  let check_pattern va vb vc expected =
    let outs = G.eval g [| va; vb; vc |] in
    Alcotest.(check bool)
      (Printf.sprintf "%b%b%b" va vb vc)
      expected (List.assoc "f" outs)
  in
  check_pattern false false false true;
  check_pattern false false true false;
  check_pattern true true true true

let test_xor_mux () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  let b = G.add_pi g "b" in
  let s = G.add_pi g "s" in
  G.add_po g "x" (G.xor g a b);
  G.add_po g "m" (G.mux g ~sel:s ~t1:a ~e0:b);
  for m = 0 to 7 do
    let va = m land 1 <> 0 and vb = m land 2 <> 0 and vs = m land 4 <> 0 in
    let outs = G.eval g [| va; vb; vs |] in
    Alcotest.(check bool) "xor" (va <> vb) (List.assoc "x" outs);
    Alcotest.(check bool) "mux" (if vs then va else vb) (List.assoc "m" outs)
  done

let test_balanced_lists () =
  let g = G.create () in
  let pis = List.init 8 (fun i -> G.add_pi g (Printf.sprintf "x%d" i)) in
  let all = G.and_list g pis in
  G.add_po g "f" all;
  let levels = G.level g in
  Alcotest.(check int) "balanced depth" 3 levels.(G.node_of all);
  Alcotest.(check bool) "true only when all ones" true
    (List.assoc "f" (G.eval g (Array.make 8 true)));
  Alcotest.(check bool) "false otherwise" false
    (List.assoc "f" (G.eval g (Array.init 8 (fun i -> i <> 3))))

let simple_network () =
  {
    Network.model = "test";
    inputs = [ "a"; "b"; "c" ];
    outputs = [ "f" ];
    nodes =
      [
        { Network.name = "t"; fanins = [ "a"; "b" ];
          sop = Sop.create 2 [ Cube.of_string "11" ] };
        { Network.name = "f"; fanins = [ "t"; "c" ];
          sop = Sop.create 2 [ Cube.of_string "1-"; Cube.of_string "-0" ] };
      ];
  }

let test_network_validate () =
  let net = simple_network () in
  (match Network.validate net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bad = { net with outputs = [ "zz" ] } in
  Alcotest.(check bool) "undefined output" true
    (Result.is_error (Network.validate bad));
  let cyc =
    {
      net with
      nodes =
        [
          { Network.name = "t"; fanins = [ "f" ];
            sop = Sop.create 1 [ Cube.of_string "1" ] };
          { Network.name = "f"; fanins = [ "t" ];
            sop = Sop.create 1 [ Cube.of_string "1" ] };
        ];
    }
  in
  Alcotest.(check bool) "cycle" true (Result.is_error (Network.validate cyc))

let test_network_to_aig () =
  let net = simple_network () in
  let g = Network.to_aig net in
  (* f = (a & b) | !c *)
  for m = 0 to 7 do
    let va = m land 1 <> 0 and vb = m land 2 <> 0 and vc = m land 4 <> 0 in
    let outs = G.eval g [| va; vb; vc |] in
    Alcotest.(check bool)
      (Printf.sprintf "m=%d" m)
      ((va && vb) || not vc)
      (List.assoc "f" outs)
  done

let prop_or_list_semantics =
  QCheck.Test.make ~name:"or_list = any" ~count:100
    QCheck.(list_of_size Gen.(1 -- 8) bool)
    (fun bits ->
      let g = G.create () in
      let pis = List.mapi (fun i _ -> G.add_pi g (Printf.sprintf "x%d" i)) bits in
      G.add_po g "f" (G.or_list g pis);
      List.assoc "f" (G.eval g (Array.of_list bits)) = List.exists Fun.id bits)

let base_tests =
  [
        Alcotest.test_case "const folding" `Quick test_const_folding;
        Alcotest.test_case "strashing" `Quick test_strashing;
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "xor and mux" `Quick test_xor_mux;
        Alcotest.test_case "balanced lists" `Quick test_balanced_lists;
        Alcotest.test_case "network validate" `Quick test_network_validate;
        Alcotest.test_case "network to aig" `Quick test_network_to_aig;
        QCheck_alcotest.to_alcotest prop_or_list_semantics;
  ]

(* ------------------------------------------------------------------ *)
(* Opt: rebuild and balance                                            *)
(* ------------------------------------------------------------------ *)

let eval_equal g1 g2 n_pis =
  let ok = ref true in
  for m = 0 to (1 lsl n_pis) - 1 do
    let inputs = Array.init n_pis (fun i -> m land (1 lsl i) <> 0) in
    let o1 = G.eval g1 inputs and o2 = G.eval g2 inputs in
    List.iter
      (fun (name, v) -> if List.assoc name o2 <> v then ok := false)
      o1
  done;
  !ok

let deep_chain n =
  let g = G.create () in
  let pis = List.init n (fun i -> G.add_pi g (Printf.sprintf "x%d" i)) in
  (* left-leaning AND chain: depth n-1 *)
  let all = List.fold_left (fun acc l -> G.and_ g acc l) (List.hd pis) (List.tl pis) in
  G.add_po g "f" all;
  g

let test_balance_reduces_depth () =
  let g = deep_chain 8 in
  let depth graph =
    let levels = G.level graph in
    Array.fold_left max 0 levels
  in
  Alcotest.(check int) "chain depth" 7 (depth g);
  let b = Aig.Opt.balance g in
  Alcotest.(check int) "balanced depth" 3 (depth b);
  Alcotest.(check bool) "same function" true (eval_equal g b 8)

let test_rebuild_drops_dead () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  let b = G.add_pi g "b" in
  let live = G.and_ g a b in
  let _dead = G.and_ g a (G.compl_ b) in
  G.add_po g "f" live;
  let r = Aig.Opt.rebuild g in
  Alcotest.(check int) "dead node dropped" 1 (G.num_ands r);
  Alcotest.(check bool) "same function" true (eval_equal g r 2)

let prop_balance_preserves_function =
  QCheck.Test.make ~name:"balance preserves function" ~count:40
    QCheck.(int_bound 9999)
    (fun seed ->
      (* random aig using the mapper test helper shape *)
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let g = G.create () in
      let lits = ref [] in
      for i = 0 to 5 do
        lits := G.add_pi g (Printf.sprintf "x%d" i) :: !lits
      done;
      let pick () =
        let arr = Array.of_list !lits in
        let idx =
          Int64.to_int
            (Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int)
               (Int64.of_int (Array.length arr)))
        in
        let l = arr.(idx) in
        if Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int) 2L = 0L
        then l else G.compl_ l
      in
      for _ = 1 to 25 do
        lits := G.and_ g (pick ()) (pick ()) :: !lits
      done;
      (match !lits with
      | o1 :: o2 :: _ ->
        G.add_po g "f" o1;
        G.add_po g "gout" o2
      | _ -> ());
      let b = Aig.Opt.balance g in
      let r = Aig.Opt.rebuild g in
      eval_equal g b 6 && eval_equal g r 6
      && G.num_ands b <= G.num_ands g + 4)

let opt_tests =
  [
    Alcotest.test_case "balance reduces depth" `Quick test_balance_reduces_depth;
    Alcotest.test_case "rebuild drops dead" `Quick test_rebuild_drops_dead;
    QCheck_alcotest.to_alcotest prop_balance_preserves_function;
  ]


let test_network_minimize () =
  let redundant =
    {
      Network.model = "m";
      inputs = [ "a"; "b" ];
      outputs = [ "f" ];
      nodes =
        [
          { Network.name = "f"; fanins = [ "a"; "b" ];
            sop =
              Sop.create 2
                [ Cube.of_string "11"; Cube.of_string "10"; Cube.of_string "01" ] };
        ];
    }
  in
  let m = Network.minimize redundant in
  (match m.Network.nodes with
  | [ n ] -> Alcotest.(check int) "cubes" 2 (Sop.num_cubes n.Network.sop)
  | _ -> Alcotest.fail "one node");
  let g1 = Network.to_aig redundant and g2 = Network.to_aig m in
  for v = 0 to 3 do
    let inputs = [| v land 1 <> 0; v land 2 <> 0 |] in
    Alcotest.(check bool) "same" (List.assoc "f" (G.eval g1 inputs))
      (List.assoc "f" (G.eval g2 inputs))
  done

let suite =
  [ ("aig",
     base_tests @ opt_tests
     @ [ Alcotest.test_case "network minimize" `Quick test_network_minimize ]) ]
