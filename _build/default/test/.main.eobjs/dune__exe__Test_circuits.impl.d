test/test_circuits.ml: Aig Alcotest Array Circuits List Netlist Printf
