test/test_bitvec.ml: Aig Alcotest Array List Printf QCheck QCheck_alcotest
