test/test_check.ml: Alcotest Atpg Build Circuits List Netlist Powder Power QCheck QCheck_alcotest Sim
