test/test_power.ml: Alcotest Build Float List Netlist Power QCheck QCheck_alcotest Sim
