test/test_redundancy.ml: Alcotest Atpg Build Gatelib List Netlist QCheck QCheck_alcotest Sim
