test/test_atpg.ml: Alcotest Atpg Build Gatelib List Logic Netlist QCheck QCheck_alcotest Sim
