test/test_gatelib.ml: Alcotest Array Gatelib Int64 List Logic Printf QCheck QCheck_alcotest Result
