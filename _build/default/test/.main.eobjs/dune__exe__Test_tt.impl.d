test/test_tt.ml: Alcotest Int64 Logic Printf QCheck QCheck_alcotest
