test/test_sim.ml: Alcotest Array Build Float Gatelib Int64 List Netlist QCheck QCheck_alcotest Sim
