test/test_resize.ml: Alcotest Array Atpg Circuits Gatelib List Logic Mapper Netlist Option Powder Printf Sta String
