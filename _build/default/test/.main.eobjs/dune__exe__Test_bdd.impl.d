test/test_bdd.ml: Alcotest Atpg Build Circuits Float Gatelib Int64 List Logic Mapper Netlist Powder Power Printf QCheck QCheck_alcotest Sim
