test/test_sta.ml: Alcotest Array Build Float Gatelib List Netlist QCheck QCheck_alcotest Sta
