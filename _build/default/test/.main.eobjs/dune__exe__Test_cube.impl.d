test/test_cube.ml: Alcotest Gen Logic Printf QCheck QCheck_alcotest
