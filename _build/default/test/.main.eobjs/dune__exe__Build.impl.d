test/build.ml: Array Gatelib Int64 List Netlist Printf Sim
