test/test_sat.ml: Alcotest Array Atpg Build Gatelib List Netlist QCheck QCheck_alcotest Sim
