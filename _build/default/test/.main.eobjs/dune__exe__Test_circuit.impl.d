test/test_circuit.ml: Alcotest Array Build Gatelib List Netlist QCheck QCheck_alcotest
