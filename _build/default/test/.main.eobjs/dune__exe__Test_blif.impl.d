test/test_blif.ml: Aig Alcotest Atpg Blif Build Circuits Gatelib List Netlist Sim Str String
