test/main.mli:
