test/test_integration.ml: Alcotest Array Atpg Circuits Hashtbl List Netlist Powder Printf Sim Sta
