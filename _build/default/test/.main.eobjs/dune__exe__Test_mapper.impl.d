test/test_mapper.ml: Aig Alcotest Array Build Gatelib Int64 List Mapper Netlist Printf QCheck QCheck_alcotest Sim
