test/test_glitch.ml: Alcotest Build Circuits Gatelib List Netlist Option Power Printf Sim
