test/test_aig.ml: Aig Alcotest Array Fun Gen Int64 List Logic Printf QCheck QCheck_alcotest Result Sim
