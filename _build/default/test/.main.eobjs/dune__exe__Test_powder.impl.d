test/test_powder.ml: Alcotest Atpg Build Circuits Float Gatelib List Netlist Powder Power Printf QCheck QCheck_alcotest Sim
