module Circuit = Netlist.Circuit
module Glitch = Power.Glitch
module Library = Gatelib.Library

let test_no_glitches_single_gate () =
  (* one gate cannot glitch: timed = zero-delay *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let f = Circuit.add_cell c (Library.find lib "and2") [| a; b |] in
  ignore (Circuit.add_po c ~name:"o" f);
  let r = Glitch.estimate ~pairs:64 c in
  Alcotest.(check (float 1e-9)) "no glitches" 0.0 r.Glitch.glitch_fraction

let test_unbalanced_paths_glitch () =
  (* classic hazard: f = xor(a, delayed(a)) shape — build
     f = xor2(a, inv(inv(inv(a)))): functionally constant... use
     instead g = and2(a, inv(a)) via a long inverter chain: the output
     is functionally constant 0 but pulses on rising a *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let inv = Gatelib.Library.inverter lib in
  let i1 = Circuit.add_cell c inv [| a |] in
  let i2 = Circuit.add_cell c inv [| i1 |] in
  let i3 = Circuit.add_cell c inv [| i2 |] in
  let f = Circuit.add_cell c (Library.find lib "and2") [| a; i3 |] in
  ignore (Circuit.add_po c ~name:"o" f);
  let r = Glitch.estimate ~pairs:128 c in
  (* f is functionally constant 0: all its timed activity is glitches *)
  Alcotest.(check bool) "glitches observed" true (r.Glitch.glitch_fraction > 0.0);
  Alcotest.(check bool) "timed >= zero-delay" true
    (r.Glitch.timed_switched_cap >= r.Glitch.zero_delay_switched_cap -. 1e-9)

let test_zero_delay_matches_estimator_scale () =
  (* the zero-delay part of the glitch report must roughly agree with
     the Monte-Carlo estimator (same model, different sampling) *)
  let spec = Option.get (Circuits.Suite.find "rd84") in
  let c = Circuits.Suite.mapped spec in
  let r = Glitch.estimate ~pairs:512 ~seed:3L c in
  let eng = Sim.Engine.create c ~words:32 in
  Sim.Engine.randomize eng (Sim.Rng.create 3L);
  let est = Power.Estimator.create eng in
  let reference = Power.Estimator.total est in
  let ratio = r.Glitch.zero_delay_switched_cap /. reference in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in [0.8, 1.2]" ratio)
    true
    (ratio > 0.8 && ratio < 1.2)

let test_timed_at_least_zero_delay () =
  List.iter
    (fun name ->
      let spec = Option.get (Circuits.Suite.find name) in
      let c = Circuits.Suite.mapped spec in
      let r = Glitch.estimate ~pairs:128 c in
      Alcotest.(check bool)
        (name ^ " timed >= functional")
        true
        (r.Glitch.timed_switched_cap >= r.Glitch.zero_delay_switched_cap -. 1e-9))
    [ "rd84"; "alu2"; "f51m" ]

let suite =
  [
    ( "glitch",
      [
        Alcotest.test_case "single gate clean" `Quick test_no_glitches_single_gate;
        Alcotest.test_case "hazard pulses counted" `Quick test_unbalanced_paths_glitch;
        Alcotest.test_case "agrees with estimator" `Quick test_zero_delay_matches_estimator_scale;
        Alcotest.test_case "timed >= functional" `Quick test_timed_at_least_zero_delay;
      ] );
  ]
