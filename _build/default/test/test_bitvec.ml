module G = Aig.Graph
module Bv = Aig.Bitvec

(* evaluate a bit-vector expression by building an AIG with fixed-width
   inputs and checking against integer arithmetic *)
let with_two_operands width f check =
  let g = G.create () in
  let a = Bv.input g "a" width in
  let b = Bv.input g "b" width in
  let result = f g a b in
  Bv.outputs g "r" result;
  let mask = (1 lsl width) - 1 in
  for va = 0 to mask do
    for vb = 0 to mask do
      let inputs =
        Array.init (2 * width) (fun i ->
            if i < width then va land (1 lsl i) <> 0
            else vb land (1 lsl (i - width)) <> 0)
      in
      let outs = G.eval g inputs in
      let r =
        List.fold_left
          (fun acc bit ->
            acc
            + (if List.assoc (Printf.sprintf "r_%d" bit) outs then 1 lsl bit else 0))
          0
          (List.init (Bv.width result) (fun i -> i))
      in
      Alcotest.(check int) (Printf.sprintf "a=%d b=%d" va vb) (check va vb mask) r
    done
  done

let test_add () =
  with_two_operands 4
    (fun g a b -> fst (Bv.add g a b))
    (fun a b mask -> (a + b) land mask)

let test_sub () =
  with_two_operands 4
    (fun g a b -> fst (Bv.sub g a b))
    (fun a b mask -> (a - b) land mask)

let test_and_or_xor () =
  with_two_operands 3 (fun g a b -> Bv.and_ g a b) (fun a b _ -> a land b);
  with_two_operands 3 (fun g a b -> Bv.or_ g a b) (fun a b _ -> a lor b);
  with_two_operands 3 (fun g a b -> Bv.xor g a b) (fun a b _ -> a lxor b)

let test_comparisons () =
  let g = G.create () in
  let a = Bv.input g "a" 4 in
  let b = Bv.input g "b" 4 in
  G.add_po g "lt" (Bv.lt g a b);
  G.add_po g "eq" (Bv.eq g a b);
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let inputs =
        Array.init 8 (fun i ->
            if i < 4 then va land (1 lsl i) <> 0 else vb land (1 lsl (i - 4)) <> 0)
      in
      let outs = G.eval g inputs in
      Alcotest.(check bool) "lt" (va < vb) (List.assoc "lt" outs);
      Alcotest.(check bool) "eq" (va = vb) (List.assoc "eq" outs)
    done
  done

let test_mux () =
  let g = G.create () in
  let s = G.add_pi g "s" in
  let a = Bv.input g "a" 3 in
  let b = Bv.input g "b" 3 in
  Bv.outputs g "m" (Bv.mux g s a b);
  for m = 0 to 127 do
    let vs = m land 1 <> 0 in
    let va = (m lsr 1) land 7 and vb = (m lsr 4) land 7 in
    let inputs =
      Array.init 7 (fun i ->
          if i = 0 then vs
          else if i <= 3 then va land (1 lsl (i - 1)) <> 0
          else vb land (1 lsl (i - 4)) <> 0)
    in
    let outs = G.eval g inputs in
    let r =
      List.fold_left
        (fun acc bit ->
          acc + (if List.assoc (Printf.sprintf "m_%d" bit) outs then 1 lsl bit else 0))
        0 [ 0; 1; 2 ]
    in
    Alcotest.(check int) "mux" (if vs then va else vb) r
  done

let test_popcount () =
  let g = G.create () in
  let x = Bv.input g "x" 7 in
  Bv.outputs g "c" (Bv.popcount g x);
  for v = 0 to 127 do
    let inputs = Array.init 7 (fun i -> v land (1 lsl i) <> 0) in
    let outs = G.eval g inputs in
    let c =
      List.fold_left
        (fun acc bit ->
          acc + (if List.assoc (Printf.sprintf "c_%d" bit) outs then 1 lsl bit else 0))
        0 [ 0; 1; 2 ]
    in
    let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
    Alcotest.(check int) "popcount" (pop v 0) c
  done

let test_shift () =
  let g = G.create () in
  let v = Bv.input g "v" 8 in
  let amt = Bv.input g "amt" 3 in
  Bv.outputs g "s" (Bv.shift_left_var g v amt);
  List.iter
    (fun (value, shift) ->
      let inputs =
        Array.init 11 (fun i ->
            if i < 8 then value land (1 lsl i) <> 0
            else shift land (1 lsl (i - 8)) <> 0)
      in
      let outs = G.eval g inputs in
      let r =
        List.fold_left
          (fun acc bit ->
            acc + (if List.assoc (Printf.sprintf "s_%d" bit) outs then 1 lsl bit else 0))
          0
          (List.init 8 (fun i -> i))
      in
      Alcotest.(check int)
        (Printf.sprintf "%d << %d" value shift)
        ((value lsl shift) land 0xFF)
        r)
    [ (0xFF, 0); (0xFF, 3); (0x01, 7); (0xA5, 4); (0x80, 1) ]

let test_reduce () =
  let g = G.create () in
  let x = Bv.input g "x" 5 in
  G.add_po g "all" (Bv.reduce_and g x);
  G.add_po g "any" (Bv.reduce_or g x);
  G.add_po g "par" (Bv.reduce_xor g x);
  for v = 0 to 31 do
    let inputs = Array.init 5 (fun i -> v land (1 lsl i) <> 0) in
    let outs = G.eval g inputs in
    let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
    Alcotest.(check bool) "all" (v = 31) (List.assoc "all" outs);
    Alcotest.(check bool) "any" (v <> 0) (List.assoc "any" outs);
    Alcotest.(check bool) "par" (pop v 0 land 1 = 1) (List.assoc "par" outs)
  done

let prop_rotate_composition =
  QCheck.Test.make ~name:"rotate by a then b = rotate by a+b" ~count:50
    QCheck.(triple (int_bound 255) (int_bound 7) (int_bound 7))
    (fun (v, r1, r2) ->
      let rotate value amount =
        ((value lsl amount) lor (value lsr (8 - amount))) land 0xFF
      in
      let g = G.create () in
      let x = Bv.input g "x" 8 in
      let once = Bv.rotate_left_var g x (Bv.const g r1 ~width:3) in
      let twice = Bv.rotate_left_var g once (Bv.const g r2 ~width:3) in
      Bv.outputs g "r" twice;
      let inputs = Array.init 8 (fun i -> v land (1 lsl i) <> 0) in
      let outs = G.eval g inputs in
      let result =
        List.fold_left
          (fun acc bit ->
            acc + (if List.assoc (Printf.sprintf "r_%d" bit) outs then 1 lsl bit else 0))
          0
          (List.init 8 (fun i -> i))
      in
      result = rotate v ((r1 + r2) mod 8))

let suite =
  [
    ( "bitvec",
      [
        Alcotest.test_case "add" `Quick test_add;
        Alcotest.test_case "sub" `Quick test_sub;
        Alcotest.test_case "bitwise ops" `Quick test_and_or_xor;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "mux" `Quick test_mux;
        Alcotest.test_case "popcount" `Quick test_popcount;
        Alcotest.test_case "variable shift" `Quick test_shift;
        Alcotest.test_case "reductions" `Quick test_reduce;
        QCheck_alcotest.to_alcotest prop_rotate_composition;
      ] );
  ]
