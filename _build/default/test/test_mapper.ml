module G = Aig.Graph
module Techmap = Mapper.Techmap
module Circuit = Netlist.Circuit
module Engine = Sim.Engine

(* Compare a mapped circuit against its source AIG on all input
   combinations (n <= 10). *)
let equivalent_to_aig g circ =
  let pis = Circuit.pis circ in
  let n = List.length pis in
  Alcotest.(check bool) "few inputs" true (n <= 10);
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let vector = List.mapi (fun i _ -> m land (1 lsl i) <> 0) pis in
    (* the AIG's pi order must match the circuit's (mapper preserves it) *)
    let aig_out = G.eval g (Array.of_list vector) in
    let circ_out = Engine.eval_single circ vector in
    List.iter
      (fun (name, v) ->
        if List.assoc name circ_out <> v then ok := false)
      aig_out
  done;
  !ok

let full_adder_aig () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  let b = G.add_pi g "b" in
  let cin = G.add_pi g "cin" in
  let sum = G.xor g (G.xor g a b) cin in
  let carry =
    G.or_ g (G.and_ g a b) (G.and_ g cin (G.xor g a b))
  in
  G.add_po g "sum" sum;
  G.add_po g "carry" carry;
  g

let test_map_full_adder_area () =
  let g = full_adder_aig () in
  let circ = Techmap.map ~objective:Techmap.Area Build.lib g in
  (match Circuit.validate circ with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "equivalent" true (equivalent_to_aig g circ)

let test_map_full_adder_power () =
  let g = full_adder_aig () in
  let circ = Techmap.map ~objective:Techmap.Power Build.lib g in
  Alcotest.(check bool) "equivalent" true (equivalent_to_aig g circ)

let test_map_uses_xor_cells () =
  (* a parity function should map onto xor2/xnor2 cells, far fewer
     gates than the 4-AND decomposition *)
  let g = G.create () in
  let a = G.add_pi g "a" in
  let b = G.add_pi g "b" in
  G.add_po g "p" (G.xor g a b);
  let circ = Techmap.map ~objective:Techmap.Area Build.lib g in
  Alcotest.(check int) "single cell" 1 (Circuit.gate_count circ);
  Alcotest.(check bool) "equivalent" true (equivalent_to_aig g circ)

let test_map_minimal_library () =
  (* the minimal library lacks many cell shapes: the structural
     fallback must still produce a correct netlist *)
  let g = full_adder_aig () in
  let circ = Techmap.map ~objective:Techmap.Area Gatelib.Library.minimal g in
  (match Circuit.validate circ with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "equivalent" true (equivalent_to_aig g circ)

let test_map_constant_po () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  G.add_po g "zero" (G.and_ g a (G.compl_ a));
  G.add_po g "one" G.lit_true;
  let circ = Techmap.map Build.lib g in
  let outs = Engine.eval_single circ [ true ] in
  Alcotest.(check bool) "zero" false (List.assoc "zero" outs);
  Alcotest.(check bool) "one" true (List.assoc "one" outs)

let test_map_po_on_pi () =
  let g = G.create () in
  let a = G.add_pi g "a" in
  G.add_po g "buf" a;
  G.add_po g "neg" (G.compl_ a);
  let circ = Techmap.map Build.lib g in
  let outs = Engine.eval_single circ [ true ] in
  Alcotest.(check bool) "buf" true (List.assoc "buf" outs);
  Alcotest.(check bool) "neg" false (List.assoc "neg" outs)

let random_aig ~seed ~n_pis ~n_nodes =
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let g = G.create () in
  let lits = ref [] in
  for i = 0 to n_pis - 1 do
    lits := G.add_pi g (Printf.sprintf "x%d" i) :: !lits
  done;
  let pick () =
    let arr = Array.of_list !lits in
    let idx =
      Int64.to_int
        (Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int)
           (Int64.of_int (Array.length arr)))
    in
    let l = arr.(idx) in
    if Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int) 2L = 0L then l
    else G.compl_ l
  in
  for _ = 1 to n_nodes do
    lits := G.and_ g (pick ()) (pick ()) :: !lits
  done;
  (* a couple of outputs over the last signals *)
  (match !lits with
  | o1 :: o2 :: o3 :: _ ->
    G.add_po g "f" o1;
    G.add_po g "gout" o2;
    G.add_po g "h" o3
  | _ -> ());
  g

let prop_mapping_preserves_function =
  QCheck.Test.make ~name:"mapping preserves function" ~count:25
    QCheck.(pair (int_bound 9999) (oneofl [ Techmap.Area; Techmap.Power ]))
    (fun (seed, objective) ->
      let g = random_aig ~seed ~n_pis:6 ~n_nodes:30 in
      let circ = Techmap.map ~objective Build.lib g in
      (match Circuit.validate circ with Ok () -> () | Error e -> failwith e);
      equivalent_to_aig g circ)

let prop_area_mapping_not_larger =
  QCheck.Test.make ~name:"area objective <= power objective area * 2" ~count:10
    QCheck.(int_bound 9999)
    (fun seed ->
      let g = random_aig ~seed ~n_pis:6 ~n_nodes:30 in
      let ca = Techmap.map ~objective:Techmap.Area Build.lib g in
      let cp = Techmap.map ~objective:Techmap.Power Build.lib g in
      Circuit.area ca <= 2.0 *. Circuit.area cp +. 1e-6)

let suite =
  [
    ( "mapper",
      [
        Alcotest.test_case "full adder (area)" `Quick test_map_full_adder_area;
        Alcotest.test_case "full adder (power)" `Quick test_map_full_adder_power;
        Alcotest.test_case "xor cells used" `Quick test_map_uses_xor_cells;
        Alcotest.test_case "minimal library fallback" `Quick test_map_minimal_library;
        Alcotest.test_case "constant po" `Quick test_map_constant_po;
        Alcotest.test_case "po on pi" `Quick test_map_po_on_pi;
        QCheck_alcotest.to_alcotest prop_mapping_preserves_function;
        QCheck_alcotest.to_alcotest prop_area_mapping_not_larger;
      ] );
  ]
