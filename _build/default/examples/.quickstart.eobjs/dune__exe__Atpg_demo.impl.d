examples/atpg_demo.ml: Atpg Circuits Format List Netlist Option Powder Power Sim
