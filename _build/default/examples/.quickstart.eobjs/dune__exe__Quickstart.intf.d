examples/quickstart.mli:
