examples/baselines.ml: Aig Atpg Circuits Format Gatelib Mapper Netlist Powder Power Sim Sta
