examples/timing_tradeoff.ml: Circuits Format List Option Powder String
