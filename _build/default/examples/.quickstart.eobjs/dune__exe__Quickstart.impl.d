examples/quickstart.ml: Atpg Format Gatelib Netlist Powder
