examples/low_power_flow.ml: Aig Atpg Blif Format Gatelib Mapper Netlist Powder
