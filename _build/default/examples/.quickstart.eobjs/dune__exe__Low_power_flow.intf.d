examples/low_power_flow.mli:
