examples/baselines.mli:
