examples/timing_tradeoff.mli:
