(* Power-delay trade-off (the experiment behind the paper's Figure 6)
   on a handful of benchmark circuits: sweep the allowed delay increase
   and watch the extra power savings saturate.

   Run with: dune exec examples/timing_tradeoff.exe *)

let () =
  let names = [ "rd84"; "alu2"; "f51m"; "t481" ] in
  let builders =
    List.filter_map
      (fun n ->
        Option.map
          (fun spec () -> Circuits.Suite.mapped spec)
          (Circuits.Suite.find n))
      names
  in
  Format.printf "Sweeping delay constraints on: %s@."
    (String.concat ", " names);
  let config = { Powder.Optimizer.default_config with words = 16 } in
  let points =
    Powder.Tradeoff.sweep ~config ~percents:[ 0.0; 10.0; 30.0; 80.0; 200.0 ]
      builders
  in
  Format.printf "%a@." Powder.Tradeoff.pp_series points;
  Format.printf
    "@.Reading the curve: the 0%% point keeps every circuit at its@.\
     initial delay; looser constraints buy additional power savings@.\
     until the curve flattens (compare the paper's Figure 6).@."
