(* POWDER against its neighbours on one circuit:

   - ATPG redundancy removal: area-oriented structural cleanup
     (the technique family POWDER's transformations generalize);
   - gate re-sizing: drive-strength swaps under the delay constraint
     (the adjacent low-power technique the paper cites);
   - POWDER itself, then POWDER followed by re-sizing;
   plus the timed (glitch-aware) power of each result.

   Run with: dune exec examples/baselines.exe *)

module Circuit = Netlist.Circuit
module Optimizer = Powder.Optimizer

let measure tag circ =
  let eng = Sim.Engine.create circ ~words:16 in
  Sim.Engine.randomize eng (Sim.Rng.create 7L);
  let est = Power.Estimator.create eng in
  let sta = Sta.Timing.analyze circ in
  let glitch = Power.Glitch.estimate ~pairs:128 circ in
  Format.printf
    "%-22s power %8.2f  area %8.0f  delay %6.2f  glitch %4.1f%%@." tag
    (Power.Estimator.total est) (Circuit.area circ)
    (Sta.Timing.circuit_delay sta)
    (100.0 *. glitch.Power.Glitch.glitch_fraction)

let () =
  (* map onto the drive-strength library so re-sizing has choices *)
  let g = Circuits.Generators.alu8 () in
  let base =
    Mapper.Techmap.map ~objective:Mapper.Techmap.Power
      Gatelib.Library.lib2_sized (Aig.Opt.balance g)
  in
  Format.printf "Circuit: 8-bit ALU, %d gates@.@." (Circuit.gate_count base);
  measure "initial" base;

  let rr = Circuit.clone base in
  ignore (Atpg.Redundancy.remove rr);
  measure "redundancy removal" rr;

  let rs = Circuit.clone base in
  ignore (Powder.Resize.optimize rs);
  measure "gate re-sizing" rs;

  let pw = Circuit.clone base in
  let config =
    { Optimizer.default_config with delay = Optimizer.Keep_initial }
  in
  ignore (Optimizer.optimize ~config pw);
  measure "POWDER (delay kept)" pw;

  ignore (Powder.Resize.optimize pw);
  measure "POWDER + re-sizing" pw;

  Format.printf
    "@.All variants preserve the circuit function; POWDER's structural@.\
     substitutions reach power the purely local techniques cannot.@."
