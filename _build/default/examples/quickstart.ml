(* Quickstart: the paper's Figure 2 example.

   Circuit A computes f = (a xor c) & b alongside e = a & b.  With a
   low-activity input c, reconnecting the EXOR's [a]-input to [e]
   (an IS2 input substitution) moves load from the busy signal [a] to
   the quiet signal [e] and lowers the activity of the EXOR output —
   without changing any primary output.  POWDER finds this rewiring by
   itself.

   Run with: dune exec examples/quickstart.exe *)

module Circuit = Netlist.Circuit
module Library = Gatelib.Library

let () =
  let lib = Library.lib2 in
  let cell = Library.find lib in
  (* build circuit A of Figure 2 *)
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let ci = Circuit.add_pi c ~name:"c" in
  let e = Circuit.add_cell c ~name:"e" (cell "and2") [| a; b |] in
  let d = Circuit.add_cell c ~name:"d" (cell "xor2") [| a; ci |] in
  let f = Circuit.add_cell c ~name:"f" (cell "and2") [| d; b |] in
  ignore (Circuit.add_po c ~name:"out_f" f);
  ignore (Circuit.add_po c ~name:"out_e" e);
  let original = Circuit.clone c in

  Format.printf "Circuit A (Figure 2):@.%a@." Circuit.pp c;

  (* signal probabilities: input c is quiet *)
  let input_prob = function "c" -> 0.15 | _ -> 0.5 in

  let config =
    { Powder.Optimizer.default_config with words = 16; input_prob }
  in
  let report = Powder.Optimizer.optimize ~config c in

  Format.printf "@.After POWDER:@.%a@." Circuit.pp c;
  Format.printf "@.%a@." Powder.Optimizer.pp_report report;

  (* the transformation is exactly verified *)
  (match Atpg.Equiv.check original c with
  | Atpg.Equiv.Equivalent ->
    Format.printf "@.Outputs verified unchanged (exhaustive check).@."
  | Atpg.Equiv.Different _ | Atpg.Equiv.Unknown ->
    failwith "unexpected: circuit changed behaviour");
  Format.printf "Switched capacitance %.4f -> %.4f (%.1f%% saved)@."
    report.Powder.Optimizer.initial_power report.Powder.Optimizer.final_power
    (Powder.Optimizer.power_reduction_percent report)
