(* Benchmark harness: regenerates every table and figure of the paper.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig2    -- the Figure 2 worked example
     dune exec bench/main.exe -- table1  -- Table 1 (both POWDER modes)
     dune exec bench/main.exe -- table2  -- Table 2 (class contributions)
     dune exec bench/main.exe -- fig6    -- Figure 6 (power-delay trade-off)
     dune exec bench/main.exe -- guard   -- guard-on vs guard-off overhead
     dune exec bench/main.exe -- micro   -- bechamel micro-benchmarks
     dune exec bench/main.exe -- parallel -- exact-check scaling vs --jobs
     dune exec bench/main.exe -- serve   -- powder_serve load generator
     dune exec bench/main.exe -- pareto  -- frontier sweep, both cost models
     dune exec bench/main.exe -- quick   -- fast subset of everything

   [--jobs N] runs the table1 circuits on a domain pool of N executors
   (default: Par.Pool.default_jobs); each optimizer run inside a pool
   task is itself sequential, so reports are unchanged.

   Absolute values differ from the paper (different library constants,
   different starting netlists); the comparison targets are the paper's
   percentages and curve shapes, recorded in EXPERIMENTS.md. *)

module Circuit = Netlist.Circuit
module Suite = Circuits.Suite
module Optimizer = Powder.Optimizer
module Subst = Powder.Subst

let words = 16
let quick = ref false
let jobs = ref (Par.Pool.default_jobs ())

(* One base seed for the whole harness; every section derives its own
   pattern stream by label, the same way the optimizer, guard and
   fuzzer do. *)
let base_seed = 0xC0FFEEL
let section_rng section = Sim.Rng.stream base_seed ("bench/" ^ section)

let base_config = { Optimizer.default_config with words }

(* Every optimizer run executed by the harness lands here and is
   written out as BENCH_powder.json at exit — per-phase timings
   included, so successive PRs can diff where the wall-clock goes. *)
let bench_runs : (string * Obs.Json.t) list ref = ref []

let record_run label (r : Optimizer.report) =
  bench_runs := (label, Optimizer.report_to_json r) :: !bench_runs

(* Filled in by the [parallel] section; merged into BENCH_powder.json. *)
let parallel_section : Obs.Json.t option ref = ref None

(* Filled in by the [serve] section; merged into BENCH_powder.json. *)
let serve_section : Obs.Json.t option ref = ref None

(* Filled in by the [scale] section; merged into BENCH_powder.json. *)
let scale_section : Obs.Json.t option ref = ref None

(* Filled in by the [pareto] section; merged into BENCH_powder.json. *)
let pareto_section : Obs.Json.t option ref = ref None

let out_file = ref "BENCH_powder.json"

(* [--merge]: fold this invocation's runs and sections into an existing
   out-file instead of overwriting it.  Needed because a representative
   baseline is not a single-process artifact: the [scale] section must
   be recorded from a scale-only process (the shape ci.sh runs it in —
   a major heap warmed by the earlier sections makes the 10k phases up
   to 3x faster than any fresh run could reproduce), so the committed
   BENCH_powder.json is regenerated as
     bench/main.exe quick table1 glitch guard parallel serve --out BENCH_powder.json
     bench/main.exe scale --merge --out BENCH_powder.json *)
let merge_out = ref false

let read_existing_out () =
  match open_in_bin !out_file with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    (match Obs.Json.of_string s with
    | Ok (Obs.Json.Obj fields) -> Some fields
    | Ok _ | Error _ -> None)

let write_bench_json () =
  (* the manifest is built at write time so it reflects the parsed
     --jobs/quick flags; [bench_diff] compares files only when their
     schema versions agree and warns when the options hash differs *)
  let manifest =
    Obs.Runinfo.create ~tool:"powder-bench" ~jobs:!jobs ~seed:base_seed
      ~circuit:"suite"
      ~options:
        [
          ("words", string_of_int words);
          ("quick", string_of_bool !quick);
        ]
      ()
  in
  let json =
    Obs.Json.Obj
      ([
         ("bench", Obs.Json.String "powder");
         ("schema_version", Obs.Json.Int Obs.Runinfo.schema_version);
         ("run", Obs.Runinfo.to_json manifest);
         ("quick", Obs.Json.Bool !quick);
         ("words", Obs.Json.Int words);
         ("jobs", Obs.Json.Int !jobs);
         ("runs", Obs.Json.Obj (List.rev !bench_runs));
       ]
      @ (match !parallel_section with
        | Some p -> [ ("parallel", p) ]
        | None -> [])
      @ (match !serve_section with
        | Some s -> [ ("serve", s) ]
        | None -> [])
      @ (match !pareto_section with
        | Some s -> [ ("pareto", s) ]
        | None -> [])
      @ match !scale_section with
        | Some s -> [ ("scale", s) ]
        | None -> [])
  in
  let json =
    match (!merge_out, read_existing_out (), json) with
    | true, Some old_fields, Obs.Json.Obj new_fields ->
      let runs_of fields =
        match List.assoc_opt "runs" fields with
        | Some (Obs.Json.Obj r) -> r
        | _ -> []
      in
      let new_runs = runs_of new_fields in
      let merged_runs =
        List.filter
          (fun (k, _) -> not (List.mem_assoc k new_runs))
          (runs_of old_fields)
        @ new_runs
      in
      (* run labels and section keys from this invocation win; sections
         only present in the existing file survive untouched *)
      let kept_sections =
        List.filter
          (fun (k, _) ->
            List.mem k [ "parallel"; "serve"; "pareto"; "scale" ]
            && not (List.mem_assoc k new_fields))
          old_fields
      in
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "runs" then (k, Obs.Json.Obj merged_runs) else (k, v))
           new_fields
        @ kept_sections)
    | _ -> json
  in
  let oc = open_out !out_file in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s (%d runs)\n%!" !out_file (List.length !bench_runs)

(* ------------------------------------------------------------------ *)
(* Figure 2: the worked example.                                       *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  print_endline "=== Figure 2: power reduction by reconnecting a gate input ===";
  let lib = Gatelib.Library.lib2 in
  let cell = Gatelib.Library.find lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let ci = Circuit.add_pi c ~name:"c" in
  let e = Circuit.add_cell c ~name:"e" (cell "and2") [| a; b |] in
  let d = Circuit.add_cell c ~name:"d" (cell "xor2") [| a; ci |] in
  let f = Circuit.add_cell c ~name:"f" (cell "and2") [| d; b |] in
  ignore (Circuit.add_po c ~name:"out_f" f);
  ignore (Circuit.add_po c ~name:"out_e" e);
  (* paper conditions: AND pin = 1 unit of capacitance, EXOR pin = 2;
     with a quiet input c the rewiring pays off *)
  let eng = Sim.Engine.create c ~words:64 in
  let probs pi = if Circuit.name c pi = "c" then 0.15 else 0.5 in
  Sim.Engine.randomize eng ~input_probs:probs (section_rng "fig2");
  let est = Power.Estimator.create eng in
  let before = Power.Estimator.total est in
  let s = { Subst.target = Subst.Branch { sink = d; pin = 0 }; source = Subst.Signal e } in
  let gain = Subst.gain_full est s in
  Printf.printf "circuit A switched capacitance: %.3f\n" before;
  Printf.printf "IS2(d.pin0 <- e): PG_A=%.3f PG_B=%.3f PG_C=%.3f total=%.3f\n"
    gain.Subst.pg_a gain.Subst.pg_b gain.Subst.pg_c (Subst.total_gain gain);
  let src = Subst.apply c s in
  ignore (Power.Estimator.update_after_edit est src);
  let after = Power.Estimator.total est in
  Printf.printf "circuit B switched capacitance: %.3f (paper: 1.555 -> 1.132)\n"
    after;
  Printf.printf "reduction: %.1f%%\n\n" (100.0 *. (before -. after) /. before)

(* ------------------------------------------------------------------ *)
(* Table 1.                                                            *)
(* ------------------------------------------------------------------ *)

type t1row = {
  spec : Suite.spec;
  initial_power : float;
  initial_area : float;
  initial_delay : float;
  unconstrained : Optimizer.report;
  constrained : Optimizer.report;
}

let table1_specs () =
  if !quick then
    (* cps is the generate-phase stress case (the signature-store
       speedup is gated against its committed trajectory point) *)
    List.filter_map Suite.find
      [ "comp"; "rd84"; "f51m"; "alu2"; "t481"; "9sym"; "cps" ]
  else Suite.all

let table1_rows () =
  let specs = table1_specs () in
  (* Both runs for one circuit are a single pool task; the optimizer
     detects it is inside a task and stays sequential.  Reports and
     [bench_runs] entries (recorded here, in spec order) are identical
     to a fully sequential sweep. *)
  let compute spec =
    let circ = Suite.mapped spec in
    let unconstrained =
      Optimizer.optimize ~config:base_config (Circuit.clone circ)
    in
    let constrained =
      Optimizer.optimize
        ~config:{ base_config with Optimizer.delay = Optimizer.Keep_initial }
        (Circuit.clone circ)
    in
    (unconstrained, constrained)
  in
  let results =
    if !jobs > 1 then begin
      Printf.eprintf "[table1] %d circuits on %d domains...\n%!"
        (List.length specs) !jobs;
      Par.Pool.with_pool ~jobs:!jobs (fun pool ->
          Par.Pool.map pool ~f:compute (Array.of_list specs))
      |> Array.to_list
      |> List.map (function
           | Some r -> r
           | None -> failwith "table1: pool task cancelled")
    end
    else
      List.map
        (fun spec ->
          Printf.eprintf "[table1] %s...\n%!" spec.Suite.name;
          compute spec)
        specs
  in
  let rows =
    List.map2
      (fun spec (unconstrained, constrained) ->
        record_run ("table1/" ^ spec.Suite.name ^ "/unconstrained") unconstrained;
        record_run ("table1/" ^ spec.Suite.name ^ "/constrained") constrained;
        {
          spec;
          initial_power = unconstrained.Optimizer.initial_power;
          initial_area = unconstrained.Optimizer.initial_area;
          initial_delay = unconstrained.Optimizer.initial_delay;
          unconstrained;
          constrained;
        })
      specs results
  in
  List.sort (fun a b -> Float.compare a.initial_area b.initial_area) rows

let print_table1 rows =
  print_endline "=== Table 1: POWDER on the benchmark suite ===";
  Printf.printf "%-10s | %8s %9s %6s | %8s %6s %9s | %8s %6s %9s %6s %6s\n"
    "circuit" "power" "area" "delay" "power" "red.%" "area" "power" "red.%"
    "area" "delay" "cpu";
  Printf.printf "%-10s | %27s | %26s | %s\n" "" "initial"
    "POWDER no delay constraint" "POWDER with delay constraints";
  let line = String.make 118 '-' in
  print_endline line;
  let sip = ref 0.0 and sia = ref 0.0 and sidel = ref 0.0 in
  let sup = ref 0.0 and sua = ref 0.0 in
  let scp = ref 0.0 and sca = ref 0.0 and scdel = ref 0.0 in
  List.iter
    (fun r ->
      let u = r.unconstrained and c = r.constrained in
      sip := !sip +. r.initial_power;
      sia := !sia +. r.initial_area;
      sidel := !sidel +. r.initial_delay;
      sup := !sup +. u.Optimizer.final_power;
      sua := !sua +. u.Optimizer.final_area;
      scp := !scp +. c.Optimizer.final_power;
      sca := !sca +. c.Optimizer.final_area;
      scdel := !scdel +. c.Optimizer.final_delay;
      Printf.printf
        "%-10s | %8.2f %9.0f %6.2f | %8.2f %6.1f %9.0f | %8.2f %6.1f %9.0f %6.2f %6.0f\n"
        r.spec.Suite.name r.initial_power r.initial_area r.initial_delay
        u.Optimizer.final_power
        (Optimizer.power_reduction_percent u)
        u.Optimizer.final_area c.Optimizer.final_power
        (Optimizer.power_reduction_percent c)
        c.Optimizer.final_area c.Optimizer.final_delay
        c.Optimizer.cpu_seconds)
    rows;
  print_endline line;
  Printf.printf
    "%-10s | %8.2f %9.0f %6.1f | %8.2f %6.1f %9.0f | %8.2f %6.1f %9.0f %6.1f\n"
    "total" !sip !sia !sidel !sup
    (100.0 *. (!sip -. !sup) /. !sip)
    !sua !scp
    (100.0 *. (!sip -. !scp) /. !sip)
    !sca !scdel;
  Printf.printf
    "reduction: power %.1f%% / area %.1f%% (unconstrained); power %.1f%% / \
     area %.1f%% / delay %.1f%% (constrained)\n"
    (100.0 *. (!sip -. !sup) /. !sip)
    (100.0 *. (!sia -. !sua) /. !sia)
    (100.0 *. (!sip -. !scp) /. !sip)
    (100.0 *. (!sia -. !sca) /. !sia)
    (100.0 *. (!sidel -. !scdel) /. !sidel);
  Printf.printf
    "(paper totals: 26.1%% power / 8.9%% area unconstrained; 21.4%% power, \
     6.8%% delay reduction constrained)\n\n"

(* ------------------------------------------------------------------ *)
(* Table 2.                                                            *)
(* ------------------------------------------------------------------ *)

let print_table2 rows =
  print_endline "=== Table 2: contribution of substitution classes ===";
  let totals = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.add totals k (0, 0.0, 0.0)) Subst.all_klasses;
  List.iter
    (fun r ->
      List.iter
        (fun (k, st) ->
          let n, p, a = Hashtbl.find totals k in
          Hashtbl.replace totals k
            ( n + st.Optimizer.accepted,
              p +. st.Optimizer.power_gain,
              a +. st.Optimizer.area_gain ))
        r.unconstrained.Optimizer.by_class)
    rows;
  let total_power =
    List.fold_left (fun acc k -> let _, p, _ = Hashtbl.find totals k in acc +. p)
      0.0 Subst.all_klasses
  in
  let total_area =
    List.fold_left (fun acc k -> let _, _, a = Hashtbl.find totals k in acc +. a)
      0.0 Subst.all_klasses
  in
  Printf.printf "%-28s | %8s %8s %8s %8s\n" "substitution:" "OS2" "IS2" "OS3" "IS3";
  let by k =
    let n, p, a = Hashtbl.find totals k in
    (n, p, a)
  in
  let pct part total = if Float.abs total > 1e-12 then 100.0 *. part /. total else 0.0 in
  let order = [ Subst.Os2; Subst.Is2; Subst.Os3; Subst.Is3 ] in
  Printf.printf "%-28s |" "accepted substitutions:";
  List.iter (fun k -> let n, _, _ = by k in Printf.printf " %8d" n) order;
  Printf.printf "\n%-28s |" "power reduction share (%):";
  List.iter (fun k -> let _, p, _ = by k in Printf.printf " %8.1f" (pct p total_power)) order;
  Printf.printf "\n%-28s |" "area reduction share (%):";
  List.iter (fun k -> let _, _, a = by k in Printf.printf " %8.1f" (pct a total_area)) order;
  Printf.printf
    "\n(paper: power 32.5 / 36.5 / 27.6 / 3.4 %%; area 171.5 / -11.6 / -27.7 / \
     -32.2 %%)\n\n"

(* ------------------------------------------------------------------ *)
(* Figure 6.                                                           *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print_endline "=== Figure 6: power-delay trade-off ===";
  let names =
    if !quick then [ "rd84"; "alu2"; "f51m" ] else Suite.fig6_names
  in
  let builders =
    List.filter_map
      (fun n -> Option.map (fun spec () -> Suite.mapped spec) (Suite.find n))
      names
  in
  let percents =
    if !quick then [ 0.0; 30.0; 200.0 ]
    else [ 0.0; 10.0; 20.0; 30.0; 50.0; 80.0; 120.0; 200.0 ]
  in
  Printf.eprintf "[fig6] sweeping %d circuits x %d constraints...\n%!"
    (List.length builders) (List.length percents);
  let points = Powder.Tradeoff.sweep ~config:base_config ~percents builders in
  Format.printf "%a@." Powder.Tradeoff.pp_series points;
  print_endline
    "(paper shape: ~26% reduction at 0% constraint growing to ~38% at 200%,\n\
    \ two thirds of the extra gain within +15% delay, flat beyond +80%)\n"

(* ------------------------------------------------------------------ *)
(* Ablations (not in the paper; design-choice experiments).            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "=== Ablations ===";
  let names = if !quick then [ "rd84"; "alu2" ] else [ "rd84"; "alu2"; "comp"; "C432"; "t481"; "C880" ] in
  (* A. optimizer family comparison: redundancy removal (area-oriented
     baseline), gate re-sizing (delay-constrained power baseline),
     POWDER, POWDER followed by re-sizing *)
  Printf.printf "%-8s | %28s | %28s | %28s | %28s\n" "" "redundancy removal"
    "gate re-sizing" "POWDER (delay kept)" "POWDER + re-sizing";
  Printf.printf "%-8s | %9s %9s %8s | %9s %9s %8s | %9s %9s %8s | %9s %9s %8s\n"
    "circuit" "power%" "area%" "delay%" "power%" "area%" "delay%" "power%"
    "area%" "delay%" "power%" "area%" "delay%";
  let measure_power circ =
    let eng = Sim.Engine.create circ ~words in
    Sim.Engine.randomize eng (section_rng "table1");
    Power.Estimator.total (Power.Estimator.create eng)
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some spec ->
        Printf.eprintf "[ablation] %s...\n%!" name;
        (* map against the sized library so re-sizing has real choices *)
        let g = spec.Suite.build () in
        let base =
          Mapper.Techmap.map ~objective:Mapper.Techmap.Power
            Gatelib.Library.lib2_sized g
        in
        let p0 = measure_power base in
        let a0 = Circuit.area base in
        let d0 = Sta.Timing.circuit_delay (Sta.Timing.analyze base) in
        let pct v0 v = 100.0 *. (v0 -. v) /. v0 in
        let finish circ =
          ( pct p0 (measure_power circ),
            pct a0 (Circuit.area circ),
            pct d0 (Sta.Timing.circuit_delay (Sta.Timing.analyze circ)) )
        in
        let rr =
          let c = Circuit.clone base in
          ignore (Atpg.Redundancy.remove c);
          finish c
        in
        let rs =
          let c = Circuit.clone base in
          ignore (Powder.Resize.optimize ~words c);
          finish c
        in
        let pw =
          let c = Circuit.clone base in
          ignore
            (Optimizer.optimize
               ~config:{ base_config with Optimizer.delay = Optimizer.Keep_initial }
               c);
          finish c
        in
        let both =
          let c = Circuit.clone base in
          ignore
            (Optimizer.optimize
               ~config:{ base_config with Optimizer.delay = Optimizer.Keep_initial }
               c);
          ignore (Powder.Resize.optimize ~words c);
          finish c
        in
        let row (p, a, d) = Printf.sprintf "%8.1f%% %8.1f%% %7.1f%%" p a d in
        Printf.printf "%-8s | %s | %s | %s | %s\n%!" name (row rr) (row rs)
          (row pw) (row both))
    names;
  (* B. exact-check engine: SAT vs classic PODEM abort rate *)
  print_endline "\nPermissibility-check engine comparison (50 candidates each):";
  Printf.printf "%-8s | %22s | %22s\n" "circuit" "SAT (ok/refuted/abort)"
    "PODEM (ok/refuted/abort)";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some spec ->
        let circ = Suite.mapped spec in
        let eng = Sim.Engine.create circ ~words in
        Sim.Engine.randomize eng (section_rng "engines");
        let est = Power.Estimator.create eng in
        let cands =
          Powder.Candidates.generate est |> List.filteri (fun i _ -> i < 50)
        in
        let tally engine =
          List.fold_left
            (fun (ok, no, ab) (s, _) ->
              if Powder.Subst.creates_cycle circ s then (ok, no, ab)
              else
                match
                  Powder.Check.permissible ~exhaustive_limit:0 ~engine circ s
                with
                | Powder.Check.Permissible -> (ok + 1, no, ab)
                | Powder.Check.Not_permissible _ -> (ok, no + 1, ab)
                | Powder.Check.Gave_up _ -> (ok, no, ab + 1))
            (0, 0, 0) cands
        in
        let sok, sno, sab = tally `Sat in
        let pok, pno, pab = tally `Podem in
        Printf.printf "%-8s | %8d/%6d/%5d | %8d/%6d/%5d\n%!" name sok sno sab
          pok pno pab)
    (if !quick then [ "rd84" ] else [ "comp"; "C432"; "rd84" ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Glitch extension: what the zero-delay model leaves out.             *)
(* ------------------------------------------------------------------ *)

let glitch () =
  print_endline
    "=== Extension: glitch (timed) power before/after POWDER ===";
  Printf.printf "%-8s | %9s %9s %8s | %9s %9s %8s\n" "" "zero-dly" "timed"
    "glitch%" "zero-dly" "timed" "glitch%";
  Printf.printf "%-8s | %28s | %28s\n" "circuit" "initial" "after POWDER";
  let names = if !quick then [ "rd84"; "alu2" ] else [ "rd84"; "alu2"; "f51m"; "C432"; "C880"; "9sym" ] in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some spec ->
        let circ = Suite.mapped spec in
        let before = Power.Glitch.estimate ~pairs:256 circ in
        record_run ("glitch/" ^ name ^ "/powder")
          (Optimizer.optimize ~config:base_config circ);
        let after = Power.Glitch.estimate ~pairs:256 circ in
        let row (r : Power.Glitch.report) =
          Printf.sprintf "%9.2f %9.2f %7.1f%%" r.Power.Glitch.zero_delay_switched_cap
            r.Power.Glitch.timed_switched_cap
            (100.0 *. r.Power.Glitch.glitch_fraction)
        in
        Printf.printf "%-8s | %s | %s\n%!" name (row before) (row after))
    names;
  print_endline
    "(the paper's zero-delay model ignores glitching, citing it at ~20% of\n\
    \ total power; this table reports how much the optimized netlists glitch)\n"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel).                                        *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "=== Micro-benchmarks of the POWDER kernels (bechamel) ===";
  let open Bechamel in
  let open Toolkit in
  let spec = Option.get (Suite.find "rd84") in
  let circ = Suite.mapped spec in
  let eng = Sim.Engine.create circ ~words in
  Sim.Engine.randomize eng (section_rng "micro");
  let est = Power.Estimator.create eng in
  let some_gate = List.hd (Circuit.live_gates circ) in
  let candidate =
    match Powder.Candidates.generate est with
    | (s, _) :: _ -> s
    | [] -> failwith "no candidate"
  in
  let t_resim =
    Test.make ~name:"table1:resimulate-all" (Staged.stage (fun () -> Sim.Engine.resim_all eng))
  in
  let t_obs =
    Test.make ~name:"table1:stem-observability"
      (Staged.stage (fun () -> ignore (Sim.Engine.stem_observability eng some_gate)))
  in
  let t_cand =
    Test.make ~name:"table1:candidate-generation"
      (Staged.stage (fun () -> ignore (Powder.Candidates.generate est)))
  in
  let t_gain =
    Test.make ~name:"table1:gain-full"
      (Staged.stage (fun () -> ignore (Subst.gain_full est candidate)))
  in
  let t_check_sat =
    Test.make ~name:"table2:permissibility-check-sat"
      (Staged.stage (fun () ->
           let clone = Subst.apply_to_clone circ candidate in
           ignore (Atpg.Equiv.check ~exhaustive_limit:0 ~engine:`Sat circ clone)))
  in
  let t_check_exh =
    Test.make ~name:"table2:permissibility-check-exhaustive"
      (Staged.stage (fun () ->
           let clone = Subst.apply_to_clone circ candidate in
           ignore (Atpg.Equiv.check ~exhaustive_limit:16 circ clone)))
  in
  let t_sta =
    Test.make ~name:"fig6:timing-analysis"
      (Staged.stage (fun () -> ignore (Sta.Timing.analyze circ)))
  in
  let tests =
    Test.make_grouped ~name:"powder"
      [ t_resim; t_obs; t_cand; t_gain; t_check_sat; t_check_exh; t_sta ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      Printf.printf "%-45s %12.0f ns/run\n" name ns)
    (List.sort compare entries);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Guard overhead: transactional verification on vs. off.              *)
(* ------------------------------------------------------------------ *)

let guard () =
  print_endline "=== Guard overhead: transactional applies on vs. off ===";
  let names = if !quick then [ "alu2" ] else [ "alu2"; "rd84"; "Z5xp1" ] in
  Printf.printf "%-10s %10s %10s %9s %12s %12s\n" "circuit" "on (s)" "off (s)"
    "overhead" "power on" "power off";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some spec ->
        let run verify_applies =
          let c = Suite.mapped spec in
          let config = { base_config with verify_applies } in
          Optimizer.optimize ~config c
        in
        let on = run true and off = run false in
        record_run ("guard/" ^ name ^ "/on") on;
        record_run ("guard/" ^ name ^ "/off") off;
        let overhead =
          if off.Optimizer.cpu_seconds > 0.0 then
            100.0 *. (on.Optimizer.cpu_seconds /. off.Optimizer.cpu_seconds -. 1.0)
          else 0.0
        in
        Printf.printf "%-10s %10.3f %10.3f %8.1f%% %12.4f %12.4f\n" name
          on.Optimizer.cpu_seconds off.Optimizer.cpu_seconds overhead
          on.Optimizer.final_power off.Optimizer.final_power;
        if on.Optimizer.final_power <> off.Optimizer.final_power then
          Printf.printf
            "  note: guard-on diverges after a rollback; both runs remain \
             verified\n")
    names;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Parallel scaling: speculative exact checks vs. --jobs.              *)
(* ------------------------------------------------------------------ *)

(* Reports at different job counts must agree on everything except the
   timing fields and the job count itself (same filter as
   [json_check --compare-reports]). *)
let strip_volatile_report = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter
         (fun (k, _) ->
           k <> "cpu_seconds" && k <> "phase_seconds" && k <> "jobs")
         fields)
  | other -> other

let parallel () =
  print_endline "=== Parallel scaling: exact-check wall clock vs --jobs ===";
  let spec, gates =
    List.fold_left
      (fun best spec ->
        let g = List.length (Circuit.live_gates (Suite.mapped spec)) in
        match best with
        | Some (_, g') when g' >= g -> best
        | _ -> Some (spec, g))
      None (table1_specs ())
    |> Option.get
  in
  Printf.printf "circuit: %s (%d gates)\n" spec.Suite.name gates;
  let job_counts = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let circ = Suite.mapped spec in
  let runs =
    List.map
      (fun j ->
        Printf.eprintf "[parallel] %s at jobs=%d...\n%!" spec.Suite.name j;
        let r =
          Optimizer.optimize
            ~config:{ base_config with Optimizer.jobs = j }
            (Circuit.clone circ)
        in
        record_run (Printf.sprintf "parallel/%s/jobs%d" spec.Suite.name j) r;
        (j, r))
      job_counts
  in
  let exact_check (r : Optimizer.report) =
    Option.value ~default:0.0
      (List.assoc_opt "exact-check" r.Optimizer.phase_seconds)
  in
  let _, r1 = List.hd runs in
  let base_exact = exact_check r1 in
  let base_json = strip_volatile_report (Optimizer.report_to_json r1) in
  Printf.printf "%6s %10s %13s %8s %6s\n" "jobs" "total(s)" "exact-chk(s)"
    "speedup" "match";
  let entries =
    List.map
      (fun (j, r) ->
        let ec = exact_check r in
        let speedup = if ec > 0.0 then base_exact /. ec else 1.0 in
        let matches =
          strip_volatile_report (Optimizer.report_to_json r) = base_json
        in
        Printf.printf "%6d %10.3f %13.3f %7.2fx %6b\n" j
          r.Optimizer.cpu_seconds ec speedup matches;
        ( "jobs" ^ string_of_int j,
          Obs.Json.Obj
            [
              ("jobs", Obs.Json.Int j);
              ("cpu_seconds", Obs.Json.Float r.Optimizer.cpu_seconds);
              ( "phase_seconds",
                Obs.Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Obs.Json.Float v))
                     r.Optimizer.phase_seconds) );
              ("exact_check_seconds", Obs.Json.Float ec);
              ("exact_check_speedup", Obs.Json.Float speedup);
              ("report_matches_jobs1", Obs.Json.Bool matches);
            ] ))
      runs
  in
  parallel_section :=
    Some
      (Obs.Json.Obj
         (("circuit", Obs.Json.String spec.Suite.name)
         :: ("gates", Obs.Json.Int gates)
         :: entries));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Service load generator: throughput and latency of powder_serve.     *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  print_endline "=== Service: supervisor throughput under load ===";
  let n = if !quick then 30 else 150 in
  let circuits = [| "rd84"; "alu2"; "f51m" |] in
  (* deterministic mixed-priority load: ids, circuits and priorities
     are pure functions of the index, so successive bench runs submit
     the same stream *)
  let lines =
    List.init n (fun i ->
        Printf.sprintf
          "{\"op\":\"submit\",\"id\":\"load-%03d\",\"circuit\":%S,\"priority\":%d,\"options\":{\"words\":4,\"max_rounds\":2}}"
          i
          circuits.(i mod Array.length circuits)
          (((i * 7) mod 11) - 5))
  in
  let dir = Filename.temp_file "powder_serve_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let q = Queue.create () in
  List.iter (fun l -> Queue.push l q) lines;
  let source () =
    if Queue.is_empty q then Serve.Supervisor.Eof
    else Serve.Supervisor.Line (Queue.pop q)
  in
  let latencies = ref [] in
  let emit = function
    | Obs.Json.Obj fs
      when List.assoc_opt "ev" fs = Some (Obs.Json.String "job_done") -> (
      match List.assoc_opt "latency_s" fs with
      | Some (Obs.Json.Float l) -> latencies := l :: !latencies
      | _ -> ())
    | _ -> ()
  in
  let config =
    { (Serve.Supervisor.default_config ~state_dir:dir) with
      Serve.Supervisor.jobs = !jobs
    }
  in
  Printf.eprintf "[serve] %d jobs on %d worker slots...\n%!" n !jobs;
  let t0 = Obs.Clock.now () in
  let outcome = Serve.Supervisor.run config ~source ~emit () in
  let wall = Obs.Clock.now () -. t0 in
  let sorted = Array.of_list !latencies in
  Array.sort Float.compare sorted;
  (* nearest-rank quantile, the same convention as [Obs.Fleet] *)
  let quant p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  let throughput =
    if wall > 0.0 then float_of_int outcome.Serve.Supervisor.completed /. wall
    else 0.0
  in
  Printf.printf "%10s %10s %10s %12s %10s %10s %10s\n" "submitted" "completed"
    "failed" "wall(s)" "jobs/s" "p50(s)" "p99(s)";
  Printf.printf "%10d %10d %10d %12.3f %10.2f %10.3f %10.3f\n\n" n
    outcome.Serve.Supervisor.completed outcome.Serve.Supervisor.failed wall
    throughput (quant 0.5) (quant 0.99);
  serve_section :=
    Some
      (Obs.Json.Obj
         [
           ("jobs_submitted", Obs.Json.Int n);
           ("completed", Obs.Json.Int outcome.Serve.Supervisor.completed);
           ("failed", Obs.Json.Int outcome.Serve.Supervisor.failed);
           ("rejected", Obs.Json.Int outcome.Serve.Supervisor.rejected);
           ("worker_slots", Obs.Json.Int !jobs);
           ("wall_seconds", Obs.Json.Float wall);
           ("throughput_jobs_per_s", Obs.Json.Float throughput);
           ("latency_p50_s", Obs.Json.Float (quant 0.5));
           ("latency_p99_s", Obs.Json.Float (quant 0.99));
           ("latency_max_s", Obs.Json.Float (quant 1.0));
         ])

(* ------------------------------------------------------------------ *)
(* Pareto: the frontier sweep driver, both cost models.                *)
(* ------------------------------------------------------------------ *)

(* One default-constraint sweep per cost model on a suite circuit:
   tracks the sweep's wall clock (it runs one optimizer per
   constraint), the frontier it finds, and the glitch-cost sweep's
   total timed-power reduction. *)
let pareto_bench () =
  let circuit_name = "rd84" in
  let spec = Option.get (Suite.find circuit_name) in
  let config =
    { base_config with
      Optimizer.seed = Sim.Rng.next (section_rng "pareto");
      max_rounds = (if !quick then 4 else 16)
    }
  in
  let sweep cost =
    let config = Pareto.Cost.apply cost config in
    let t0 = Obs.Clock.now () in
    let r =
      Pareto.Sweep.run ~config ~jobs:!jobs ~name:circuit_name (fun () ->
          Suite.mapped spec)
    in
    (r, Obs.Clock.now () -. t0)
  in
  Printf.eprintf "[pareto] %s, %d constraints x 2 cost models...\n%!"
    circuit_name
    (List.length Pareto.Sweep.default_specs);
  let zd, zd_wall = sweep Pareto.Cost.Zero_delay in
  let gl, gl_wall =
    sweep (Pareto.Cost.Glitch { pairs = Pareto.Cost.default_glitch_pairs })
  in
  (* per-point runs land in the runs object so bench_diff gates the
     sweep's wall clock phase by phase, like every other section *)
  List.iter
    (fun (lbl, rep) ->
      record_run (Printf.sprintf "pareto/%s/zero-delay/%s" circuit_name lbl) rep)
    zd.Pareto.Sweep.reports;
  List.iter
    (fun (lbl, rep) ->
      record_run (Printf.sprintf "pareto/%s/glitch/%s" circuit_name lbl) rep)
    gl.Pareto.Sweep.reports;
  Format.printf "%s (zero-delay cost, %.2fs):@,%a@." circuit_name zd_wall
    Pareto.Sweep.pp zd;
  Format.printf "%s (glitch cost, %.2fs):@,%a@." circuit_name gl_wall
    Pareto.Sweep.pp gl;
  let glitch_delta =
    List.fold_left
      (fun acc (_, (rep : Optimizer.report)) ->
        match (rep.initial_glitch_power, rep.final_glitch_power) with
        | Some gi, Some gf -> acc +. (gi -. gf)
        | _ -> acc)
      0.0 gl.Pareto.Sweep.reports
  in
  let section_of (r : Pareto.Sweep.report) wall =
    Obs.Json.Obj
      [
        ("wall_seconds", Obs.Json.Float wall);
        ("points", Obs.Json.Int (List.length r.Pareto.Sweep.points));
        ("frontier", Obs.Json.Int (List.length r.Pareto.Sweep.frontier));
        ("dominated", Obs.Json.Int r.Pareto.Sweep.dominated);
        ( "substitutions",
          Obs.Json.Int
            (List.fold_left
               (fun acc (p : Pareto.Frontier.point) -> acc + p.substitutions)
               0 r.Pareto.Sweep.points) );
      ]
  in
  pareto_section :=
    Some
      (Obs.Json.Obj
         [
           ("circuit", Obs.Json.String circuit_name);
           ("constraints", Obs.Json.Int (List.length Pareto.Sweep.default_specs));
           ("zero_delay", section_of zd zd_wall);
           ("glitch", section_of gl gl_wall);
           ("glitch_delta", Obs.Json.Float glitch_delta);
         ])

(* ------------------------------------------------------------------ *)
(* Scale: synthetic netlists, windowed vs global checking.             *)
(* ------------------------------------------------------------------ *)

(* The suite tops out at a few hundred gates; this section tracks how
   the optimizer holds up on circuits two orders of magnitude larger
   (Circuits.Generators.synth — xor-rich layered netlists with shared
   fanout and structural duplicates).  The headline metric is
   gates/second for one full optimization round; the windowed and
   global configurations are run side by side so the check-phase
   ratio (the cost windowing removes) and the verdict agreement are
   tracked run over run.  Every run lands in BENCH_powder.json under
   scale/*, so ci.sh's bench_diff gate catches end-to-end throughput
   regressions on large netlists, not just on the paper suite. *)
let scale () =
  print_endline "=== Scale: synthetic netlists, windowed vs global checks ===";
  (* Deliberately NOT downsized under [quick]: the whole point of this
     section is large-netlist behaviour, and shrinking it would gate
     nothing.  ci.sh budgets for it with a dedicated stage and its own
     wall-clock cap, and the committed baseline stays reproducible with
     one command (quick table1 ... scale). *)
  let gates = 10_000 in
  let label_of w =
    match w with None -> "off" | Some k -> Printf.sprintf "window%d" k
  in
  let exact_check (r : Optimizer.report) =
    Option.value ~default:0.0
      (List.assoc_opt "exact-check" r.Optimizer.phase_seconds)
  in
  let name = Printf.sprintf "synth%dk" (gates / 1000) in
  let circ = Circuits.Generators.synth ~seed:1 ~gates in
  let live = List.length (Circuit.live_gates circ) in
  Printf.printf "circuit: %s (%d live gates)\n" name live;
  let runs =
    List.map
      (fun w ->
        Printf.eprintf "[scale] %s at --window %s...\n%!" name (label_of w);
        let r =
          Optimizer.optimize
            ~config:
              { base_config with Optimizer.max_rounds = 1; window = w }
            (Circuit.clone circ)
        in
        record_run (Printf.sprintf "scale/%s/%s" name (label_of w)) r;
        (w, r))
      [ Some 16; None ]
  in
  let off_exact =
    List.assoc None runs |> exact_check
  in
  Printf.printf "%10s %10s %9s %12s %8s %8s %10s\n" "window" "total(s)"
    "gates/s" "exact-chk(s)" "proved" "escal." "chk-ratio";
  let entries =
    List.map
      (fun (w, (r : Optimizer.report)) ->
        let total = r.Optimizer.cpu_seconds in
        let gps = if total > 0.0 then float_of_int live /. total else 0.0 in
        let ec = exact_check r in
        let ratio = if ec > 0.0 then off_exact /. ec else Float.infinity in
        Printf.printf "%10s %10.3f %9.0f %12.3f %8d %8d %9.1fx\n" (label_of w)
          total gps ec r.Optimizer.window_proved r.Optimizer.window_escalated
          ratio;
        ( label_of w,
          Obs.Json.Obj
            [
              ("gates", Obs.Json.Int live);
              ("cpu_seconds", Obs.Json.Float total);
              ("gates_per_second", Obs.Json.Float gps);
              ("exact_check_seconds", Obs.Json.Float ec);
              ("window_proved", Obs.Json.Int r.Optimizer.window_proved);
              ( "window_escalated",
                Obs.Json.Int r.Optimizer.window_escalated );
              ("final_power", Obs.Json.Float r.Optimizer.final_power);
            ] ))
      runs
  in
  scale_section :=
    Some (Obs.Json.Obj (("circuit", Obs.Json.String name) :: entries));
  (* A window counterexample escalates to the global miter instead of
     rejecting, so the two legs can only diverge when the global engine
     gave up or timed out on a candidate the window proves.  When the
     global leg decided every check — the case on this circuit — the
     final powers must be identical, and divergence means the windowed
     path accepted something the global oracle refutes: fail the bench
     run, which fails ci's scale stage. *)
  let off = List.assoc None runs in
  let final w = (List.assoc w runs).Optimizer.final_power in
  if
    off.Optimizer.rejected_by_giveup = 0
    && off.Optimizer.rejected_by_timeout = 0
    && final (Some 16) <> final None
  then begin
    Printf.eprintf
      "scale: windowed final power %.17g <> global %.17g — windowed \
       checking diverged from the global oracle\n"
      (final (Some 16)) (final None);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let () =
  Obs.Runtime.tune_gc ();
  let rec parse acc = function
    | [] -> List.rev acc
    | ("quick" | "--quick") :: rest ->
      quick := true;
      parse acc rest
    | ("-j" | "--jobs") :: n :: rest ->
      jobs := max 1 (int_of_string n);
      parse acc rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      jobs := max 1 (int_of_string (String.sub a 7 (String.length a - 7)));
      parse acc rest
    | ("-o" | "--out") :: f :: rest ->
      out_file := f;
      parse acc rest
    | "--merge" :: rest ->
      merge_out := true;
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let want x = args = [] || List.mem x args in
  (* registered after flag parsing: even a section that raises leaves a
     well-formed (possibly partial) trajectory point behind *)
  at_exit write_bench_json;
  if want "fig2" then fig2 ();
  let rows =
    if want "table1" || want "table2" then Some (table1_rows ()) else None
  in
  (match rows with
  | Some rows ->
    if want "table1" then print_table1 rows;
    if want "table2" then print_table2 rows
  | None -> ());
  if want "fig6" then fig6 ();
  if want "ablation" then ablation ();
  if want "glitch" then glitch ();
  if want "guard" then guard ();
  if want "micro" then micro ();
  if want "parallel" then parallel ();
  if want "serve" then serve_bench ();
  if want "pareto" then pareto_bench ();
  if want "scale" then scale ()
